#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/fault.h"
#include "util/coding.h"
#include "util/hash.h"
#include "util/random.h"

namespace kimdb {
namespace {

// On-disk framing: [len fixed32][crc fixed64][payload: len bytes].
// crc = Hash64(payload). A record is "complete" iff its framing and
// checksum verify; parsing stops at the first incomplete record.
Result<WalRecord> DecodePayload(std::string_view payload) {
  Decoder dec(payload);
  WalRecord rec;
  KIMDB_ASSIGN_OR_RETURN(rec.lsn, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(rec.txn_id, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(uint8_t type, dec.ReadFixed8());
  if (type < 1 || type > 7) return Status::Corruption("bad wal record type");
  rec.type = static_cast<WalRecordType>(type);
  KIMDB_ASSIGN_OR_RETURN(rec.key, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(std::string_view before, dec.ReadLengthPrefixed());
  KIMDB_ASSIGN_OR_RETURN(std::string_view after, dec.ReadLengthPrefixed());
  rec.before = std::string(before);
  rec.after = std::string(after);
  return rec;
}

}  // namespace

std::string Wal::EncodeRecord(const WalRecord& rec) {
  std::string payload;
  PutVarint64(&payload, rec.lsn);
  PutVarint64(&payload, rec.txn_id);
  PutFixed8(&payload, static_cast<uint8_t>(rec.type));
  PutVarint64(&payload, rec.key);
  PutLengthPrefixed(&payload, rec.before);
  PutLengthPrefixed(&payload, rec.after);

  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed64(&out, Hash64(payload));
  out += payload;
  return out;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  // Scan existing records to find the last complete one and the max LSN.
  off_t size = ::lseek(fd, 0, SEEK_END);
  std::string buf;
  buf.resize(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != size) {
      ::close(fd);
      return Status::IOError("pread wal failed");
    }
  }
  uint64_t next_lsn = 1;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;  // torn tail
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;  // corrupt tail
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    next_lsn = std::max(next_lsn, rec->lsn + 1);
    pos += 12 + len;
  }
  // Discard the torn/corrupt tail from the file, not just from the parse:
  // if stale bytes stayed beyond `pos`, a later, shorter run of appends
  // could leave a dead generation's record aligned after the new tail,
  // where a subsequent Open would resurrect it as a ghost.
  if (static_cast<off_t>(pos) < size) {
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 ||
        ::fdatasync(fd) != 0) {
      ::close(fd);
      return Status::IOError("wal tail truncate failed: " +
                             std::string(std::strerror(errno)));
    }
  }
  return std::unique_ptr<Wal>(new Wal(fd, path, next_lsn, pos));
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

/// pwrite loop shared by Append and AppendReserved: writes `bytes` at
/// absolute offset `base`, routing every chunk through the kWalAppend
/// failpoint. Returns OK only once every byte reached the OS buffer; on
/// failure a (possibly corrupted) prefix may remain on disk -- exactly
/// what a crash mid-pwrite leaves.
Status PwriteWithFaults(int fd, FaultInjector* fault,
                        const std::string& bytes, uint64_t base) {
  size_t written = 0;
  while (written < bytes.size()) {
    size_t want = bytes.size() - written;
    if (fault != nullptr) {
      FaultInjector::Decision d = fault->Observe(FaultOp::kWalAppend, want);
      if (d.fail) {
        if (d.torn_prefix > 0) {
          // Torn append: a corrupted prefix of the record reaches the file
          // beyond the complete prefix.
          std::string torn = bytes.substr(written, d.torn_prefix);
          if (d.corrupt_seed != 0) {
            Random rng(d.corrupt_seed);
            torn.back() ^= static_cast<char>(1 + rng.Uniform(255));
          }
          (void)::pwrite(fd, torn.data(), torn.size(),
                         static_cast<off_t>(base + written));
        }
        return FaultInjector::Error(FaultOp::kWalAppend);
      }
      if (d.short_io) {
        if (d.torn_prefix == 0) continue;  // zero-byte short write: retry
        want = d.torn_prefix;
      }
    }
    ssize_t n = ::pwrite(fd, bytes.data() + written, want,
                         static_cast<off_t>(base + written));
    if (n < 0) {
      return Status::IOError("wal append failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("wal append failed: pwrite wrote no bytes");
    }
    written += static_cast<size_t>(n);  // short write: retry the remainder
  }
  return Status::OK();
}

}  // namespace

void Wal::MarkCompletedLocked(uint64_t offset, uint64_t end) {
  completed_[offset] = end;
  // Slots are adjacent by construction (Reserve hands out back-to-back
  // ranges), so the frontier advances by exact-offset matches.
  uint64_t fe = file_end_.load(std::memory_order_relaxed);
  auto it = completed_.begin();
  while (it != completed_.end() && it->first == fe) {
    fe = it->second;
    it = completed_.erase(it);
  }
  file_end_.store(fe, std::memory_order_release);
}

void Wal::MarkFailed(uint64_t offset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed_floor_ = std::min(failed_floor_, offset);
  }
  append_cv_.notify_all();
}

Result<uint64_t> Wal::Append(WalRecord rec) {
  obs::Timer timer(append_ns_);  // includes mu_ contention, by design
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_floor_ != UINT64_MAX) {
    // A reserved slot permanently failed: recovery's checksum scan stops
    // at the hole, so any record appended beyond it can never become
    // durable. Acknowledging it would be silent loss -- fail loudly
    // instead so callers learn the log is wedged.
    return Status::IOError("wal wedged: permanent append hole at offset " +
                           std::to_string(failed_floor_));
  }
  rec.lsn = next_lsn_;  // consumed only if the append fully succeeds
  std::string bytes = EncodeRecord(rec);
  // Claim the slot after every outstanding reservation; holding mu_ for
  // the whole call means a failure can roll the claim back (reserved_end_
  // is still newest), preserving the no-LSN-gap contract.
  const uint64_t base = reserved_end_;
  Status st = PwriteWithFaults(fd_, fault_, bytes, base);
  if (!st.ok()) {
    // file_end_, reserved_end_ and next_lsn_ are untouched, so no LSN gap
    // or phantom bytes remain: the next append overwrites the prefix.
    return st;
  }
  reserved_end_ = base + bytes.size();
  MarkCompletedLocked(base, reserved_end_);
  next_lsn_ = rec.lsn + 1;
  appended_.fetch_add(1, std::memory_order_relaxed);
  append_cv_.notify_all();
  return rec.lsn;
}

Wal::Reservation Wal::Reserve(WalRecord rec) {
  obs::Timer timer(reserve_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  Reservation r;
  r.lsn = next_lsn_++;
  rec.lsn = r.lsn;
  r.bytes = EncodeRecord(rec);
  r.offset = reserved_end_;
  reserved_end_ += r.bytes.size();
  return r;
}

Status Wal::AppendReserved(Reservation* resv) {
  obs::Timer timer(append_ns_);
  if (fault_ != nullptr) {
    // The reservation-to-append window: the LSN and byte range are spoken
    // for, but no bytes have reached the file yet. A kWalReserve fault
    // here models a crash in that gap -- recovery must still restore a
    // dense commit-ts frontier from the records before the hole.
    FaultInjector::Decision d =
        fault_->Observe(FaultOp::kWalReserve, resv->bytes.size());
    if (d.fail || d.short_io) {
      MarkFailed(resv->offset);
      return FaultInjector::Error(FaultOp::kWalReserve);
    }
  }
  // Off mu_: concurrent redemptions target disjoint ranges, and pwrite at
  // explicit offsets is position-independent.
  Status st = PwriteWithFaults(fd_, fault_, resv->bytes, resv->offset);
  if (!st.ok()) {
    MarkFailed(resv->offset);
    return st;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MarkCompletedLocked(resv->offset, resv->end());
    appended_.fetch_add(1, std::memory_order_relaxed);
  }
  append_cv_.notify_all();
  return Status::OK();
}

Status Wal::SyncTo(uint64_t target) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    append_cv_.wait(lock, [&] {
      return file_end_.load(std::memory_order_relaxed) >= target ||
             failed_floor_ < target;
    });
    if (failed_floor_ < target) {
      return Status::IOError("wal append hole below sync target");
    }
  }
  return SyncInternal(target);
}

Status Wal::Sync() {
  uint64_t target;
  bool lost_beyond_hole;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = file_end_.load(std::memory_order_relaxed);
    // Completed slots stranded above a permanent hole can never merge into
    // the contiguous prefix, so no fdatasync will ever cover them.
    lost_beyond_hole = failed_floor_ != UINT64_MAX && !completed_.empty();
  }
  Status st = SyncInternal(target);
  if (st.ok() && lost_beyond_hole) {
    // The durable prefix stops at the hole: an OK here would read as "all
    // appended records are durable" when some are unrecoverable.
    return Status::IOError(
        "wal wedged: completed records beyond a permanent append hole can "
        "never become durable");
  }
  return st;
}

Status Wal::SyncInternal(uint64_t target) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    if (durable_end_ >= target) return Status::OK();  // coalesced: no I/O
    if (!sync_active_) break;
    // A leader's fdatasync is in flight; it may or may not cover our
    // records -- re-check when it finishes.
    sync_cv_.wait(lock);
  }
  sync_active_ = true;
  // Group commit: the leader's fdatasync covers every record appended
  // before this point, including followers that arrived after `target`.
  const uint64_t cover = file_end_.load(std::memory_order_acquire);
  const uint64_t cover_records = appended_.load(std::memory_order_relaxed);
  lock.unlock();

  Status st;
  if (fault_ != nullptr) {
    FaultInjector::Decision d = fault_->Observe(FaultOp::kWalSync, 0);
    if (d.fail || d.short_io) st = FaultInjector::Error(FaultOp::kWalSync);
  }
  if (st.ok()) {
    fdatasyncs_.fetch_add(1, std::memory_order_relaxed);
    obs::Timer timer(fsync_ns_);
    obs::StageScope fsync_span(trace_, obs::TraceStage::kWalFsync, 0, cover);
    if (::fdatasync(fd_) != 0) {
      st = Status::IOError("wal fdatasync failed: " +
                           std::string(std::strerror(errno)));
    }
  }

  lock.lock();
  sync_active_ = false;
  if (st.ok()) {
    if (cover_records > durable_records_) {
      // Records this flush newly made durable = the leader's batch.
      if (batch_records_ != nullptr) {
        batch_records_->Record(cover_records - durable_records_);
      }
      durable_records_ = cover_records;
    }
    durable_end_ = std::max(durable_end_, cover);
  }
  sync_cv_.notify_all();
  return st;
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t end = file_end_.load(std::memory_order_acquire);
  std::string buf;
  buf.resize(end);
  if (end > 0) {
    ssize_t n = ::pread(fd_, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(end)) {
      return Status::IOError("pread wal failed");
    }
  }
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    out.push_back(std::move(*rec));
    pos += 12 + len;
  }
  return out;
}

Status Wal::Truncate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (::ftruncate(fd_, 0) != 0) {
      return Status::IOError("wal truncate failed");
    }
    file_end_.store(0, std::memory_order_release);
    reserved_end_ = 0;
    completed_.clear();
    failed_floor_ = UINT64_MAX;
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("wal fdatasync failed");
    }
  }
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  durable_end_ = 0;
  return Status::OK();
}

}  // namespace kimdb
