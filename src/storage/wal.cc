#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/fault.h"
#include "util/coding.h"
#include "util/hash.h"
#include "util/random.h"

namespace kimdb {
namespace {

// On-disk framing: [len fixed32][crc fixed64][payload: len bytes].
// crc = Hash64(payload). A record is "complete" iff its framing and
// checksum verify; parsing stops at the first incomplete record.
Result<WalRecord> DecodePayload(std::string_view payload) {
  Decoder dec(payload);
  WalRecord rec;
  KIMDB_ASSIGN_OR_RETURN(rec.lsn, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(rec.txn_id, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(uint8_t type, dec.ReadFixed8());
  if (type < 1 || type > 7) return Status::Corruption("bad wal record type");
  rec.type = static_cast<WalRecordType>(type);
  KIMDB_ASSIGN_OR_RETURN(rec.key, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(std::string_view before, dec.ReadLengthPrefixed());
  KIMDB_ASSIGN_OR_RETURN(std::string_view after, dec.ReadLengthPrefixed());
  rec.before = std::string(before);
  rec.after = std::string(after);
  return rec;
}

}  // namespace

std::string Wal::EncodeRecord(const WalRecord& rec) {
  std::string payload;
  PutVarint64(&payload, rec.lsn);
  PutVarint64(&payload, rec.txn_id);
  PutFixed8(&payload, static_cast<uint8_t>(rec.type));
  PutVarint64(&payload, rec.key);
  PutLengthPrefixed(&payload, rec.before);
  PutLengthPrefixed(&payload, rec.after);

  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed64(&out, Hash64(payload));
  out += payload;
  return out;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  // Scan existing records to find the last complete one and the max LSN.
  off_t size = ::lseek(fd, 0, SEEK_END);
  std::string buf;
  buf.resize(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != size) {
      ::close(fd);
      return Status::IOError("pread wal failed");
    }
  }
  uint64_t next_lsn = 1;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;  // torn tail
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;  // corrupt tail
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    next_lsn = std::max(next_lsn, rec->lsn + 1);
    pos += 12 + len;
  }
  // Discard the torn/corrupt tail from the file, not just from the parse:
  // if stale bytes stayed beyond `pos`, a later, shorter run of appends
  // could leave a dead generation's record aligned after the new tail,
  // where a subsequent Open would resurrect it as a ghost.
  if (static_cast<off_t>(pos) < size) {
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 ||
        ::fdatasync(fd) != 0) {
      ::close(fd);
      return Status::IOError("wal tail truncate failed: " +
                             std::string(std::strerror(errno)));
    }
  }
  return std::unique_ptr<Wal>(new Wal(fd, path, next_lsn, pos));
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Wal::Append(WalRecord rec) {
  obs::Timer timer(append_ns_);  // includes mu_ contention, by design
  std::lock_guard<std::mutex> lock(mu_);
  rec.lsn = next_lsn_;  // consumed only if the append fully succeeds
  std::string bytes = EncodeRecord(rec);
  const uint64_t base = file_end_.load(std::memory_order_relaxed);
  size_t written = 0;
  while (written < bytes.size()) {
    size_t want = bytes.size() - written;
    if (fault_ != nullptr) {
      FaultInjector::Decision d =
          fault_->Observe(FaultOp::kWalAppend, want);
      if (d.fail) {
        if (d.torn_prefix > 0) {
          // Torn append: a corrupted prefix of the record reaches the file
          // beyond file_end_, exactly what a crash mid-pwrite leaves.
          std::string torn = bytes.substr(written, d.torn_prefix);
          if (d.corrupt_seed != 0) {
            Random rng(d.corrupt_seed);
            torn.back() ^= static_cast<char>(1 + rng.Uniform(255));
          }
          (void)::pwrite(fd_, torn.data(), torn.size(),
                         static_cast<off_t>(base + written));
        }
        return FaultInjector::Error(FaultOp::kWalAppend);
      }
      if (d.short_io) {
        if (d.torn_prefix == 0) continue;  // zero-byte short write: retry
        want = d.torn_prefix;
      }
    }
    ssize_t n = ::pwrite(fd_, bytes.data() + written, want,
                         static_cast<off_t>(base + written));
    if (n < 0) {
      // errno is from this pwrite, not a stale value; file_end_ and
      // next_lsn_ are untouched, so no LSN gap or phantom bytes remain.
      return Status::IOError("wal append failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("wal append failed: pwrite wrote no bytes");
    }
    written += static_cast<size_t>(n);  // short write: retry the remainder
  }
  file_end_.store(base + bytes.size(), std::memory_order_release);
  next_lsn_ = rec.lsn + 1;
  appended_.fetch_add(1, std::memory_order_relaxed);
  return rec.lsn;
}

Status Wal::Sync() {
  const uint64_t target = file_end_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    if (durable_end_ >= target) return Status::OK();  // coalesced: no I/O
    if (!sync_active_) break;
    // A leader's fdatasync is in flight; it may or may not cover our
    // records -- re-check when it finishes.
    sync_cv_.wait(lock);
  }
  sync_active_ = true;
  // Group commit: the leader's fdatasync covers every record appended
  // before this point, including followers that arrived after `target`.
  const uint64_t cover = file_end_.load(std::memory_order_acquire);
  const uint64_t cover_records = appended_.load(std::memory_order_relaxed);
  lock.unlock();

  Status st;
  if (fault_ != nullptr) {
    FaultInjector::Decision d = fault_->Observe(FaultOp::kWalSync, 0);
    if (d.fail || d.short_io) st = FaultInjector::Error(FaultOp::kWalSync);
  }
  if (st.ok()) {
    fdatasyncs_.fetch_add(1, std::memory_order_relaxed);
    obs::Timer timer(fsync_ns_);
    if (::fdatasync(fd_) != 0) {
      st = Status::IOError("wal fdatasync failed: " +
                           std::string(std::strerror(errno)));
    }
  }

  lock.lock();
  sync_active_ = false;
  if (st.ok()) {
    if (cover_records > durable_records_) {
      // Records this flush newly made durable = the leader's batch.
      if (batch_records_ != nullptr) {
        batch_records_->Record(cover_records - durable_records_);
      }
      durable_records_ = cover_records;
    }
    durable_end_ = std::max(durable_end_, cover);
  }
  sync_cv_.notify_all();
  return st;
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t end = file_end_.load(std::memory_order_acquire);
  std::string buf;
  buf.resize(end);
  if (end > 0) {
    ssize_t n = ::pread(fd_, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(end)) {
      return Status::IOError("pread wal failed");
    }
  }
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    out.push_back(std::move(*rec));
    pos += 12 + len;
  }
  return out;
}

Status Wal::Truncate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (::ftruncate(fd_, 0) != 0) {
      return Status::IOError("wal truncate failed");
    }
    file_end_.store(0, std::memory_order_release);
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("wal fdatasync failed");
    }
  }
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  durable_end_ = 0;
  return Status::OK();
}

}  // namespace kimdb
