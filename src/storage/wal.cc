#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"
#include "util/hash.h"

namespace kimdb {
namespace {

// On-disk framing: [len fixed32][crc fixed64][payload: len bytes].
// crc = Hash64(payload). A record is "complete" iff its framing and
// checksum verify; parsing stops at the first incomplete record.
Result<WalRecord> DecodePayload(std::string_view payload) {
  Decoder dec(payload);
  WalRecord rec;
  KIMDB_ASSIGN_OR_RETURN(rec.lsn, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(rec.txn_id, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(uint8_t type, dec.ReadFixed8());
  if (type < 1 || type > 7) return Status::Corruption("bad wal record type");
  rec.type = static_cast<WalRecordType>(type);
  KIMDB_ASSIGN_OR_RETURN(rec.key, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(std::string_view before, dec.ReadLengthPrefixed());
  KIMDB_ASSIGN_OR_RETURN(std::string_view after, dec.ReadLengthPrefixed());
  rec.before = std::string(before);
  rec.after = std::string(after);
  return rec;
}

}  // namespace

std::string Wal::EncodeRecord(const WalRecord& rec) {
  std::string payload;
  PutVarint64(&payload, rec.lsn);
  PutVarint64(&payload, rec.txn_id);
  PutFixed8(&payload, static_cast<uint8_t>(rec.type));
  PutVarint64(&payload, rec.key);
  PutLengthPrefixed(&payload, rec.before);
  PutLengthPrefixed(&payload, rec.after);

  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed64(&out, Hash64(payload));
  out += payload;
  return out;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  // Scan existing records to find the last complete one and the max LSN.
  off_t size = ::lseek(fd, 0, SEEK_END);
  std::string buf;
  buf.resize(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != size) {
      ::close(fd);
      return Status::IOError("pread wal failed");
    }
  }
  uint64_t next_lsn = 1;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;  // torn tail
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;  // corrupt tail
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    next_lsn = std::max(next_lsn, rec->lsn + 1);
    pos += 12 + len;
  }
  return std::unique_ptr<Wal>(new Wal(fd, path, next_lsn, pos));
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Wal::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.lsn = next_lsn_++;
  std::string bytes = EncodeRecord(rec);
  ssize_t n = ::pwrite(fd_, bytes.data(), bytes.size(),
                       static_cast<off_t>(file_end_));
  if (n != static_cast<ssize_t>(bytes.size())) {
    return Status::IOError("wal append failed: " +
                           std::string(std::strerror(errno)));
  }
  file_end_ += bytes.size();
  ++appended_;
  return rec.lsn;
}

Status Wal::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("wal fdatasync failed");
  }
  return Status::OK();
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string buf;
  buf.resize(file_end_);
  if (file_end_ > 0) {
    ssize_t n = ::pread(fd_, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(file_end_)) {
      return Status::IOError("pread wal failed");
    }
  }
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    uint32_t len = DecodeFixed32(buf.data() + pos);
    if (pos + 12 + len > buf.size()) break;
    uint64_t crc = DecodeFixed64(buf.data() + pos + 4);
    std::string_view payload(buf.data() + pos + 12, len);
    if (Hash64(payload) != crc) break;
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) break;
    out.push_back(std::move(*rec));
    pos += 12 + len;
  }
  return out;
}

Status Wal::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("wal truncate failed");
  }
  file_end_ = 0;
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("wal fdatasync failed");
  }
  return Status::OK();
}

}  // namespace kimdb
