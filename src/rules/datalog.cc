#include "rules/datalog.h"

#include <algorithm>

namespace kimdb {

std::string RuleEngine::EncodeTuple(const std::vector<Value>& t) {
  std::string s;
  for (const Value& v : t) v.EncodeTo(&s);
  return s;
}

bool RuleEngine::FactSet::Add(const std::vector<Value>& t) {
  if (!keys.insert(EncodeTuple(t)).second) return false;
  tuples.push_back(t);
  if (!t.empty()) {
    std::string first;
    t[0].EncodeTo(&first);
    by_first_arg[first].push_back(tuples.size() - 1);
  }
  return true;
}

bool RuleEngine::FactSet::Contains(const std::vector<Value>& t) const {
  return keys.count(EncodeTuple(t)) > 0;
}

const std::vector<size_t>* RuleEngine::FactSet::WithFirstArg(
    const Value& v) const {
  std::string key;
  v.EncodeTo(&key);
  auto it = by_first_arg.find(key);
  return it == by_first_arg.end() ? nullptr : &it->second;
}

Status RuleEngine::AddFact(const std::string& pred,
                           std::vector<Value> tuple) {
  if (pred.empty()) return Status::InvalidArgument("empty predicate name");
  facts_[pred].Add(tuple);
  return Status::OK();
}

Status RuleEngine::AddRule(Rule rule) {
  if (rule.head.negated) {
    return Status::InvalidArgument("rule heads cannot be negated");
  }
  if (rule.body.empty()) {
    return Status::InvalidArgument("rules need a body (use AddFact)");
  }
  // Range restriction: every head variable and every variable in a negated
  // atom must occur in some positive body atom.
  std::unordered_set<std::string> positive_vars;
  for (const RAtom& a : rule.body) {
    if (a.negated) continue;
    for (const RTerm& t : a.args) {
      if (t.is_var) positive_vars.insert(t.var);
    }
  }
  auto check_bound = [&](const RAtom& a, const char* what) -> Status {
    for (const RTerm& t : a.args) {
      if (t.is_var && !positive_vars.count(t.var)) {
        return Status::InvalidArgument(
            std::string("variable '") + t.var + "' in " + what +
            " does not occur in a positive body atom");
      }
    }
    return Status::OK();
  };
  KIMDB_RETURN_IF_ERROR(check_bound(rule.head, "the head"));
  for (const RAtom& a : rule.body) {
    if (a.negated) KIMDB_RETURN_IF_ERROR(check_bound(a, "a negated atom"));
  }
  // Evaluate negated atoms after the positive atoms that bind their
  // variables (safe ordering for both bottom-up and top-down evaluation).
  std::stable_partition(rule.body.begin(), rule.body.end(),
                        [](const RAtom& a) { return !a.negated; });
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status RuleEngine::ImportExtent(const std::string& pred, ClassId cls,
                                const std::vector<std::string>& attrs,
                                bool hierarchy) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("no object store attached");
  }
  const Catalog& cat = *store_->catalog();
  auto visit = [&](const Object& obj) -> Status {
    // Cartesian fan-out over set-valued attributes. A set-valued (or
    // set-domained) attribute with no elements contributes *no* facts for
    // this object -- the nested-relational reading of an empty set --
    // while a null scalar attribute contributes Null (missing data).
    std::vector<std::vector<Value>> rows{{Value::Ref(obj.oid())}};
    for (const std::string& name : attrs) {
      Result<const AttributeDef*> attr =
          cat.ResolveAttr(obj.class_id(), name);
      std::vector<Value> vals;
      if (attr.ok()) {
        const Value& v = obj.Get((*attr)->id);
        if (v.is_collection()) {
          vals = v.elements();
        } else if ((*attr)->domain.is_set) {
          // declared set-valued but unset: empty set, no facts
        } else {
          vals.push_back(v);
        }
      } else {
        vals.push_back(Value::Null());
      }
      std::vector<std::vector<Value>> next;
      for (const auto& row : rows) {
        for (const Value& v : vals) {
          auto extended = row;
          extended.push_back(v);
          next.push_back(std::move(extended));
        }
      }
      rows = std::move(next);
    }
    for (auto& row : rows) facts_[pred].Add(row);
    return Status::OK();
  };
  return hierarchy ? store_->ForEachInHierarchy(cls, visit)
                   : store_->ForEachInClass(cls, visit);
}

bool RuleEngine::Unify(const RAtom& atom, const std::vector<Value>& tuple,
                       Bindings* b) {
  if (atom.args.size() != tuple.size()) return false;
  Bindings local = *b;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const RTerm& t = atom.args[i];
    if (t.is_var) {
      auto it = local.find(t.var);
      if (it == local.end()) {
        local[t.var] = tuple[i];
      } else if (it->second.Compare(tuple[i]) != 0) {
        return false;
      }
    } else if (t.constant.Compare(tuple[i]) != 0) {
      return false;
    }
  }
  *b = std::move(local);
  return true;
}

Result<std::map<std::string, int>> RuleEngine::ComputeStrata() const {
  // Ullman's algorithm: stratum[p] >= stratum[q] for positive deps,
  // stratum[p] > stratum[q] for negative deps; iterate to fixpoint, fail
  // if any stratum exceeds the number of predicates (negative cycle).
  std::map<std::string, int> stratum;
  for (const Rule& r : rules_) {
    stratum[r.head.pred] = 0;
    for (const RAtom& a : r.body) stratum.emplace(a.pred, 0);
  }
  size_t n = stratum.size();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : rules_) {
      int& h = stratum[r.head.pred];
      for (const RAtom& a : r.body) {
        int need = stratum[a.pred] + (a.negated ? 1 : 0);
        if (h < need) {
          h = need;
          if (static_cast<size_t>(h) > n) {
            return Status::InvalidArgument(
                "rules are not stratified (negation through recursion)");
          }
          changed = true;
        }
      }
    }
  }
  return stratum;
}

Status RuleEngine::CheckStratified() const {
  return ComputeStrata().status();
}

void RuleEngine::MatchBody(
    const Rule& rule, size_t idx, Bindings b,
    const std::unordered_map<std::string, FactSet>& delta, bool used_delta,
    std::vector<std::pair<std::string, std::vector<Value>>>* out) const {
  if (idx == rule.body.size()) {
    // Semi-naive: require at least one positive atom matched from delta
    // (when a delta is in play at all).
    if (!delta.empty() && !used_delta) return;
    std::vector<Value> head;
    for (const RTerm& t : rule.head.args) {
      head.push_back(t.is_var ? b.at(t.var) : t.constant);
    }
    out->push_back({rule.head.pred, std::move(head)});
    return;
  }
  const RAtom& atom = rule.body[idx];
  if (atom.negated) {
    // Ground the atom under current bindings; fail if present.
    std::vector<Value> probe;
    for (const RTerm& t : atom.args) {
      probe.push_back(t.is_var ? b.at(t.var) : t.constant);
    }
    auto it = facts_.find(atom.pred);
    if (it != facts_.end() && it->second.Contains(probe)) return;
    MatchBody(rule, idx + 1, std::move(b), delta, used_delta, out);
    return;
  }
  auto it = facts_.find(atom.pred);
  if (it == facts_.end()) return;
  auto dit = delta.find(atom.pred);
  auto try_tuple = [&](const std::vector<Value>& tuple) {
    Bindings next = b;
    if (!Unify(atom, tuple, &next)) return;
    bool in_delta = dit != delta.end() && dit->second.Contains(tuple);
    MatchBody(rule, idx + 1, std::move(next), delta,
              used_delta || in_delta, out);
  };
  // Bound-first-argument join: restrict the scan via the fact index.
  if (!atom.args.empty()) {
    const RTerm& first = atom.args[0];
    const Value* bound = nullptr;
    if (!first.is_var) {
      bound = &first.constant;
    } else {
      auto bit = b.find(first.var);
      if (bit != b.end()) bound = &bit->second;
    }
    if (bound != nullptr) {
      const std::vector<size_t>* hits = it->second.WithFirstArg(*bound);
      if (hits != nullptr) {
        for (size_t i : *hits) try_tuple(it->second.tuples[i]);
      }
      return;
    }
  }
  for (const auto& tuple : it->second.tuples) try_tuple(tuple);
}

uint64_t RuleEngine::EvalRule(
    const Rule& rule, const std::unordered_map<std::string, FactSet>& delta,
    std::vector<std::pair<std::string, std::vector<Value>>>* out) const {
  size_t before = out->size();
  MatchBody(rule, 0, Bindings{}, delta, /*used_delta=*/false, out);
  return out->size() - before;
}

Result<uint64_t> RuleEngine::ForwardChain() {
  KIMDB_ASSIGN_OR_RETURN(auto strata, ComputeStrata());
  int max_stratum = 0;
  for (const auto& [pred, s] : strata) max_stratum = std::max(max_stratum, s);

  uint64_t derived_total = 0;
  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<const Rule*> active;
    for (const Rule& r : rules_) {
      if (strata.at(r.head.pred) == stratum) active.push_back(&r);
    }
    if (active.empty()) continue;

    // Naive first round (delta empty means "no delta restriction"), then
    // semi-naive iterations driven by the per-round delta.
    std::unordered_map<std::string, FactSet> delta;
    bool first = true;
    while (true) {
      std::vector<std::pair<std::string, std::vector<Value>>> produced;
      for (const Rule* r : active) {
        EvalRule(*r, first ? std::unordered_map<std::string, FactSet>{}
                           : delta,
                 &produced);
      }
      first = false;
      std::unordered_map<std::string, FactSet> next_delta;
      uint64_t fresh = 0;
      for (auto& [pred, tuple] : produced) {
        if (facts_[pred].Add(tuple)) {
          next_delta[pred].Add(tuple);
          ++fresh;
        }
      }
      derived_total += fresh;
      if (fresh == 0) break;
      delta = std::move(next_delta);
    }
  }
  return derived_total;
}

Result<std::vector<Bindings>> RuleEngine::Match(const RAtom& goal) const {
  std::vector<Bindings> out;
  auto it = facts_.find(goal.pred);
  if (it == facts_.end()) return out;
  for (const auto& tuple : it->second.tuples) {
    Bindings b;
    if (Unify(goal, tuple, &b)) out.push_back(std::move(b));
  }
  return out;
}

Result<std::vector<Bindings>> RuleEngine::Prove(const RAtom& goal,
                                                size_t max_depth) const {
  std::vector<std::string> wanted;
  for (const RTerm& t : goal.args) {
    if (t.is_var) wanted.push_back(t.var);
  }
  std::vector<Bindings> out;
  ProveGoals({goal}, Bindings{}, max_depth, &out, wanted);
  // Deduplicate results.
  std::vector<Bindings> uniq;
  std::unordered_set<std::string> seen;
  for (const Bindings& b : out) {
    std::vector<Value> key_vals;
    for (const std::string& v : wanted) {
      auto it = b.find(v);
      key_vals.push_back(it == b.end() ? Value::Null() : it->second);
    }
    if (seen.insert(EncodeTuple(key_vals)).second) {
      Bindings projected;
      for (const std::string& v : wanted) {
        auto it = b.find(v);
        if (it != b.end()) projected[v] = it->second;
      }
      uniq.push_back(std::move(projected));
    }
  }
  return uniq;
}

bool RuleEngine::ProveGoals(std::vector<RAtom> goals, Bindings b,
                            size_t depth, std::vector<Bindings>* out,
                            const std::vector<std::string>& wanted) const {
  if (goals.empty()) {
    out->push_back(b);
    return true;
  }
  if (depth == 0) return false;
  RAtom goal = goals.back();
  goals.pop_back();

  // Apply current bindings to the goal.
  for (RTerm& t : goal.args) {
    if (t.is_var) {
      auto it = b.find(t.var);
      if (it != b.end()) t = RTerm::Const(it->second);
    }
  }

  if (goal.negated) {
    // Negation as failure on the (now ground) goal.
    for (const RTerm& t : goal.args) {
      if (t.is_var) return false;  // unsafe: should be prevented upstream
    }
    RAtom positive = goal;
    positive.negated = false;
    std::vector<Bindings> sub;
    ProveGoals({positive}, Bindings{}, depth - 1, &sub, {});
    if (!sub.empty()) return false;
    return ProveGoals(std::move(goals), std::move(b), depth, out, wanted);
  }

  bool any = false;
  // Base facts (via the first-argument index when the goal's first
  // argument is ground -- bindings were substituted in above).
  auto fit = facts_.find(goal.pred);
  if (fit != facts_.end()) {
    auto try_tuple = [&](const std::vector<Value>& tuple) {
      Bindings next = b;
      if (!Unify(goal, tuple, &next)) return;
      any |= ProveGoals(goals, std::move(next), depth, out, wanted);
    };
    if (!goal.args.empty() && !goal.args[0].is_var) {
      const std::vector<size_t>* hits =
          fit->second.WithFirstArg(goal.args[0].constant);
      if (hits != nullptr) {
        for (size_t i : *hits) try_tuple(fit->second.tuples[i]);
      }
    } else {
      for (const auto& tuple : fit->second.tuples) try_tuple(tuple);
    }
  }
  // Rules (with variable renaming).
  for (const Rule& r : rules_) {
    if (r.head.pred != goal.pred) continue;
    uint64_t rename = ++rename_counter_;
    auto renamed = [&](const RTerm& t) {
      if (!t.is_var) return t;
      return RTerm::Var(t.var + "#" + std::to_string(rename));
    };
    // Unify goal args with (renamed) head args.
    Bindings next = b;
    bool ok = true;
    std::unordered_map<std::string, RTerm> head_subst;
    for (size_t i = 0; i < goal.args.size() && ok; ++i) {
      if (i >= r.head.args.size()) {
        ok = false;
        break;
      }
      RTerm h = renamed(r.head.args[i]);
      const RTerm& g = goal.args[i];
      if (!h.is_var && !g.is_var) {
        ok = h.constant.Compare(g.constant) == 0;
      } else if (h.is_var && !g.is_var) {
        auto it = next.find(h.var);
        if (it == next.end()) {
          next[h.var] = g.constant;
        } else {
          ok = it->second.Compare(g.constant) == 0;
        }
      } else if (!h.is_var && g.is_var) {
        auto it = next.find(g.var);
        if (it == next.end()) {
          next[g.var] = h.constant;
        } else {
          ok = it->second.Compare(h.constant) == 0;
        }
      } else {
        // var-var: alias the head var to the goal var via a chain --
        // handled by binding the head var lazily when the body grounds it.
        // We record goal-var <- head-var aliasing by deferring: bind head
        // var when known; to keep the machinery simple we bind goal var
        // after body proof via head var lookup, implemented by pushing an
        // equality through a shared fresh name: rename goal var into the
        // head var.
        auto it = next.find(g.var);
        if (it != next.end()) {
          next[h.var] = it->second;
        } else {
          // Remember alias: when the body binds h.var, g.var follows.
          // Implemented by a sentinel binding pass below.
          head_subst[g.var] = RTerm::Var(h.var);
        }
      }
    }
    if (!ok || goal.args.size() != r.head.args.size()) continue;

    std::vector<RAtom> subgoals = goals;
    // Push body atoms (renamed) -- reverse so they prove left-to-right.
    for (auto it = r.body.rbegin(); it != r.body.rend(); ++it) {
      RAtom a = *it;
      for (RTerm& t : a.args) t = renamed(t);
      subgoals.push_back(std::move(a));
    }
    std::vector<Bindings> sub;
    ProveGoals(std::move(subgoals), next, depth - 1, &sub, wanted);
    for (Bindings& sb : sub) {
      // Resolve goal-var aliases through the proved head vars.
      for (const auto& [gvar, hterm] : head_subst) {
        auto hit = sb.find(hterm.var);
        if (hit != sb.end()) sb[gvar] = hit->second;
      }
      out->push_back(std::move(sb));
      any = true;
    }
  }
  return any;
}

uint64_t RuleEngine::FactCount(const std::string& pred) const {
  auto it = facts_.find(pred);
  return it == facts_.end() ? 0 : it->second.tuples.size();
}

}  // namespace kimdb
