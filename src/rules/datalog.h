#ifndef KIMDB_RULES_DATALOG_H_
#define KIMDB_RULES_DATALOG_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "object/object_store.h"

namespace kimdb {

/// A term of a rule atom: a variable ("X") or a constant value.
struct RTerm {
  bool is_var = false;
  std::string var;
  Value constant;

  static RTerm Var(std::string name) {
    RTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static RTerm Const(Value v) {
    RTerm t;
    t.constant = std::move(v);
    return t;
  }
};

/// predicate(args...), possibly negated in a rule body.
struct RAtom {
  std::string pred;
  std::vector<RTerm> args;
  bool negated = false;
};

/// head :- body. Heads must be positive; every head variable must occur in
/// a positive body atom (range restriction); negation must be stratified.
struct Rule {
  RAtom head;
  std::vector<RAtom> body;
};

/// Variable bindings produced by a proof.
using Bindings = std::unordered_map<std::string, Value>;

/// The deductive capability of §5.4: a Datalog engine whose extensional
/// database is drawn from class extents (ImportExtent maps objects of a
/// class -- or its hierarchy -- to facts), supporting
///
///  * semi-naive *forward chaining* to fixpoint (bottom-up),
///  * SLD *backward chaining* (top-down, goal-directed) with
///    negation-as-failure on ground subgoals,
///  * stratified negation (rules are rejected at AddRule/chain time if the
///    negative dependency graph has a cycle).
class RuleEngine {
 public:
  explicit RuleEngine(ObjectStore* store = nullptr) : store_(store) {}

  Status AddFact(const std::string& pred, std::vector<Value> tuple);
  Status AddRule(Rule rule);

  /// Imports each object of `cls` (and subclasses when `hierarchy`) as a
  /// fact  pred(oid-ref, attr1, attr2, ...). Set-valued attributes fan out
  /// into one fact per element.
  Status ImportExtent(const std::string& pred, ClassId cls,
                      const std::vector<std::string>& attrs,
                      bool hierarchy = true);

  /// Runs stratified semi-naive evaluation to fixpoint.
  /// Returns the number of newly derived facts.
  Result<uint64_t> ForwardChain();

  /// Matches `goal` against the *materialized* facts (run ForwardChain
  /// first to see derived facts). Returns one Bindings per match.
  Result<std::vector<Bindings>> Match(const RAtom& goal) const;

  /// Top-down proof of `goal` without materializing the IDB.
  Result<std::vector<Bindings>> Prove(const RAtom& goal,
                                      size_t max_depth = 128) const;

  uint64_t FactCount(const std::string& pred) const;

  /// Verifies the rule set is stratified (no negative cycles).
  Status CheckStratified() const;

 private:
  struct FactSet {
    // Encoded-tuple keys for O(1) dedup; decoded tuples for iteration;
    // an index on the first argument so joins with a bound first argument
    // (the overwhelmingly common case in linear-recursive rules) touch
    // only matching tuples instead of the whole relation.
    std::unordered_set<std::string> keys;
    std::vector<std::vector<Value>> tuples;
    std::unordered_map<std::string, std::vector<size_t>> by_first_arg;

    bool Add(const std::vector<Value>& t);
    bool Contains(const std::vector<Value>& t) const;
    /// Indices of tuples whose first argument equals `v`.
    const std::vector<size_t>* WithFirstArg(const Value& v) const;
  };

  static std::string EncodeTuple(const std::vector<Value>& t);

  /// Unifies an atom's args with a ground tuple under `b`; extends `b` on
  /// success.
  static bool Unify(const RAtom& atom, const std::vector<Value>& tuple,
                    Bindings* b);

  /// Evaluates one rule given current facts; appends new head tuples.
  uint64_t EvalRule(const Rule& rule,
                    const std::unordered_map<std::string, FactSet>& delta,
                    std::vector<std::pair<std::string, std::vector<Value>>>*
                        out) const;

  /// Recursive body matcher.
  void MatchBody(const Rule& rule, size_t idx, Bindings b,
                 const std::unordered_map<std::string, FactSet>& delta,
                 bool used_delta,
                 std::vector<std::pair<std::string, std::vector<Value>>>* out)
      const;

  /// Computes strata (pred -> stratum). Fails on unstratifiable negation.
  Result<std::map<std::string, int>> ComputeStrata() const;

  bool ProveGoals(std::vector<RAtom> goals, Bindings b, size_t depth,
                  std::vector<Bindings>* out,
                  const std::vector<std::string>& wanted) const;

  ObjectStore* store_;
  std::unordered_map<std::string, FactSet> facts_;
  std::vector<Rule> rules_;
  mutable uint64_t rename_counter_ = 0;
};

}  // namespace kimdb

#endif  // KIMDB_RULES_DATALOG_H_
