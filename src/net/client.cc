#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kimdb {
namespace net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto client = std::unique_ptr<Client>(new Client());
  client->fd_ = fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Response> Client::ReceiveResponse() {
  std::string payload;
  while (true) {
    KIMDB_ASSIGN_OR_RETURN(bool got, reader_.Next(&payload));
    if (got) break;
    char buf[16 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }
  return DecodeResponse(payload);
}

Result<Response> Client::RoundTrip(const Request& req) {
  std::string frame;
  EncodeRequest(req, &frame);
  KIMDB_RETURN_IF_ERROR(SendRaw(frame));
  KIMDB_ASSIGN_OR_RETURN(Response resp, ReceiveResponse());
  if (resp.type != req.type) {
    return Status::Corruption("response type mismatch");
  }
  return resp;
}

Result<std::vector<Response>> Client::Pipeline(
    const std::vector<Request>& reqs) {
  std::string frames;
  for (const Request& req : reqs) EncodeRequest(req, &frames);
  KIMDB_RETURN_IF_ERROR(SendRaw(frames));
  std::vector<Response> out;
  out.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    KIMDB_ASSIGN_OR_RETURN(Response resp, ReceiveResponse());
    if (resp.type != reqs[i].type) {
      return Status::Corruption("pipelined response out of order");
    }
    out.push_back(std::move(resp));
  }
  return out;
}

namespace {
Status ToStatus(const Response& resp) {
  if (resp.status == StatusCode::kOk) return Status::OK();
  return Status(resp.status, resp.message);
}
}  // namespace

Result<std::string> Client::Hello(const std::string& client_name) {
  Request req;
  req.type = MsgType::kHello;
  req.text = client_name;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.text;
}

Status Client::Ping() {
  Request req;
  req.type = MsgType::kPing;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  return ToStatus(resp);
}

Result<std::string> Client::Get(uint64_t oid) {
  Request req;
  req.type = MsgType::kGet;
  req.oid = oid;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.object_bytes;
}

Result<std::vector<uint64_t>> Client::Query(const std::string& oql) {
  Request req;
  req.type = MsgType::kQuery;
  req.text = oql;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.oids;
}

Result<std::string> Client::Explain(const std::string& oql) {
  Request req;
  req.type = MsgType::kExplain;
  req.text = oql;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.text;
}

Result<uint64_t> Client::Begin() {
  Request req;
  req.type = MsgType::kTxnBegin;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.u64;
}

Status Client::Set(uint64_t txn, uint64_t oid, const std::string& attr,
                   const Value& value) {
  Request req;
  req.type = MsgType::kTxnSet;
  req.txn = txn;
  req.oid = oid;
  req.text = attr;
  req.value = value;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  return ToStatus(resp);
}

Status Client::Commit(uint64_t txn) {
  Request req;
  req.type = MsgType::kTxnCommit;
  req.txn = txn;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  return ToStatus(resp);
}

Status Client::Abort(uint64_t txn) {
  Request req;
  req.type = MsgType::kTxnAbort;
  req.txn = txn;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  return ToStatus(resp);
}

Result<std::string> Client::Metrics() {
  Request req;
  req.type = MsgType::kMetrics;
  KIMDB_ASSIGN_OR_RETURN(Response resp, RoundTrip(req));
  KIMDB_RETURN_IF_ERROR(ToStatus(resp));
  return resp.text;
}

}  // namespace net
}  // namespace kimdb
