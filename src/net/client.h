#ifndef KIMDB_NET_CLIENT_H_
#define KIMDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/result.h"

namespace kimdb {
namespace net {

/// Blocking wire-protocol client: one TCP connection, synchronous
/// request/response helpers plus an explicit pipelined batch API
/// (`Pipeline`) that writes many frames before reading any response --
/// that is what lets `bench_e14_loadgen` keep the server's per-connection
/// slot queues deep enough to merge commits into WAL group-commit batches.
/// Not thread-safe; use one Client per thread.
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// HELLO handshake; returns the server banner.
  Result<std::string> Hello(const std::string& client_name);
  Status Ping();
  /// Point read; returns the encoded Object image (Object::Decode-able).
  Result<std::string> Get(uint64_t oid);
  /// OQL query; returns raw OID bits of the result set.
  Result<std::vector<uint64_t>> Query(const std::string& oql);
  /// OQL explain; returns the rendered plan.
  Result<std::string> Explain(const std::string& oql);
  Result<uint64_t> Begin();
  Status Set(uint64_t txn, uint64_t oid, const std::string& attr,
             const Value& value);
  /// Durable on OK: the server's WAL group commit fdatasync'd this txn.
  Status Commit(uint64_t txn);
  Status Abort(uint64_t txn);
  /// Registry snapshot JSON from the server.
  Result<std::string> Metrics();

  /// Pipelined round-trip: encodes and writes every request back-to-back,
  /// then reads exactly one response per request, in order.
  Result<std::vector<Response>> Pipeline(const std::vector<Request>& reqs);

  /// Writes raw bytes to the socket (tests: torn frames, garbage).
  Status SendRaw(std::string_view bytes);
  /// Reads one response frame (blocking). IOError once the server closes.
  Result<Response> ReceiveResponse();

  int fd() const { return fd_; }

 private:
  Client() = default;
  Result<Response> RoundTrip(const Request& req);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace net
}  // namespace kimdb

#endif  // KIMDB_NET_CLIENT_H_
