#ifndef KIMDB_NET_PROTOCOL_H_
#define KIMDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/oid.h"
#include "model/value.h"
#include "util/coding.h"
#include "util/result.h"

namespace kimdb {
namespace net {

/// KIMDB wire protocol (DESIGN.md §17): compact length-prefixed binary
/// frames over a byte stream.
///
///   frame := [u32 len (LE)] [u8 type] [body: len-1 bytes]
///
/// `len` counts the type byte plus the body, so an empty-bodied message
/// has len == 1. Requests and responses share the framing; a response
/// echoes its request's type byte and leads with a status code, so a
/// pipelining client matches responses to requests purely by order.
/// Frames larger than the negotiated maximum are a protocol error: the
/// peer closes the connection rather than buffering unbounded input.

inline constexpr uint32_t kProtocolVersion = 1;
/// Frame header: u32 length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;
/// Default cap on len (type + body). Large enough for a metrics dump or a
/// wide query result, small enough that one rogue frame cannot OOM the
/// server.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class MsgType : uint8_t {
  kHello = 1,      // client name + proto version -> server banner
  kPing = 2,       // liveness no-op
  kGet = 3,        // point read by OID -> encoded object
  kQuery = 4,      // OQL text -> OID list
  kExplain = 5,    // OQL text -> rendered plan
  kTxnBegin = 6,   // -> txn id
  kTxnSet = 7,     // txn, oid, attr name, value
  kTxnCommit = 8,  // txn (durable on OK response)
  kTxnAbort = 9,   // txn
  kMetrics = 10,   // -> registry snapshot JSON
};

/// True for the type bytes the server accepts; anything else in a frame
/// header is a protocol error.
bool IsValidMsgType(uint8_t t);

/// One parsed request. A single struct (rather than one per verb) keeps
/// the server's dispatch and the pipelining queues simple; unused fields
/// stay default for any given type.
struct Request {
  MsgType type = MsgType::kPing;
  std::string text;   // kHello: client name; kQuery/kExplain: OQL;
                      // kTxnSet: attribute name
  uint64_t txn = 0;   // kTxnSet / kTxnCommit / kTxnAbort
  uint64_t oid = 0;   // kGet / kTxnSet (raw OID bits)
  Value value;        // kTxnSet
};

/// One response. `status` is the engine's StatusCode; on failure `message`
/// carries the error text and the payload fields are empty.
struct Response {
  MsgType type = MsgType::kPing;  // echoes the request
  StatusCode status = StatusCode::kOk;
  std::string message;        // error text (empty on OK)
  std::string text;           // kHello banner / kExplain plan / kMetrics JSON
  std::string object_bytes;   // kGet: Object::EncodeTo image
  std::vector<uint64_t> oids; // kQuery result (raw OID bits)
  uint64_t u64 = 0;           // kTxnBegin: txn id
};

/// Appends one complete frame (header + type + body) for `req` to `dst`.
void EncodeRequest(const Request& req, std::string* dst);
/// Appends one complete frame for `resp` to `dst`.
void EncodeResponse(const Response& resp, std::string* dst);

/// Decodes a request frame's payload (the bytes after the length prefix:
/// type byte + body). Corruption on malformed bodies or unknown types.
Result<Request> DecodeRequest(std::string_view payload);
/// Decodes a response frame's payload.
Result<Response> DecodeResponse(std::string_view payload);

/// Incremental frame assembler shared by the server's per-connection read
/// path and the blocking client: Feed() raw bytes in whatever chunks the
/// socket delivers (torn headers and frames spanning reads are fine), then
/// pull complete frames with Next(). A frame whose length prefix is zero
/// or exceeds `max_frame_bytes` poisons the reader (protocol error): Next
/// returns Corruption from then on and the connection must be closed.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Moves the next complete frame payload (type byte + body) into `out`.
  /// Returns true when a frame was produced, false when more bytes are
  /// needed, Corruption once the stream is poisoned.
  Result<bool> Next(std::string* out);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed (tests).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace net
}  // namespace kimdb

#endif  // KIMDB_NET_PROTOCOL_H_
