#ifndef KIMDB_NET_SERVER_H_
#define KIMDB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace kimdb {

class Database;

namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  uint16_t port = 0;
  /// Worker threads executing parsed requests against the Database.
  /// Concurrent COMMITs from independent connections ride these into the
  /// WAL group commit together -- more workers means bigger leader
  /// fdatasync batches under multi-client load.
  size_t workers = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection cap on parsed-but-unanswered requests. A connection
  /// at the cap stops being read (backpressure) until half the window
  /// drains; protects the server from a client that pipelines without
  /// ever reading responses.
  size_t max_pipeline = 128;
  /// Stop() waits this long for in-flight requests to complete and
  /// response bytes to flush before force-closing connections.
  uint32_t drain_timeout_ms = 10000;
  int listen_backlog = 128;
};

/// The KIMDB wire-protocol front-end (DESIGN.md §17): one epoll
/// edge-triggered I/O thread owns every socket; a pool of worker threads
/// executes parsed requests against the Database.
///
/// Pipelining: the I/O thread parses as many frames per connection as the
/// client sent, queueing one response slot per request in arrival order.
/// Workers complete slots out of order; the contiguous prefix of finished
/// slots is flushed, so responses always leave in request order and
/// concurrent commits from different connections land in the WAL group
/// commit together.
///
/// Stop() (and the SIGINT path of `kimdb_server`) drains: the listening
/// socket closes first, reads stop, every already-parsed request runs to
/// completion -- commits finish their group-commit fdatasync -- and
/// buffered responses flush before connections close. A commit the client
/// saw acknowledged is therefore always durable across a server stop.
/// Connection-scoped transactions still open when a connection dies are
/// aborted so a vanished client can never wedge a checkpoint.
class Server {
 public:
  /// Binds, registers the net.* metrics on `db`'s registry, installs the
  /// frontend stop hook (Database::Close stops the server first), and
  /// spawns the I/O + worker threads. `db` must outlive the server or
  /// close after it.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Drains and shuts down; idempotent and callable from any thread
  /// (including a signal-triggered main loop).
  void Stop();

  /// Connections currently open (tests).
  size_t open_connections() const;

 private:
  /// One response slot of a pipelined connection: filled by a worker,
  /// harvested in arrival order by the I/O thread.
  struct Slot {
    Request req;
    std::string bytes;  // encoded response frame
    std::chrono::steady_clock::time_point t0;
    bool done = false;
  };

  struct Conn {
    explicit Conn(size_t max_frame) : reader(max_frame) {}
    int fd = -1;
    FrameReader reader;
    std::mutex mu;
    std::deque<std::unique_ptr<Slot>> slots;  // arrival order, under mu
    std::string outbuf;                       // under mu
    size_t outpos = 0;                        // consumed prefix of outbuf
    bool want_write = false;     // outbuf stalled on EAGAIN
    bool close_after_flush = false;
    bool read_eof = false;       // peer half-closed or drain mode
    bool paused = false;         // backpressure: at max_pipeline
    bool closed = false;
    std::unordered_set<uint64_t> open_txns;  // begun on this connection
    // Per-connection execution queue: slots run one at a time, in arrival
    // order, so pipelined operations on the same transaction (SET then
    // COMMIT) never race each other. Parallelism comes from *across*
    // connections -- which is exactly what feeds the WAL group commit.
    std::deque<Slot*> exec_queue;  // under mu
    bool exec_scheduled = false;   // conn is on (or owned by) a worker
  };

  Server() = default;

  void IoLoop();
  void WorkerLoop();

  void HandleAcceptable();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  /// Parses every complete frame buffered on `conn` into slots + work
  /// items (stops at the pipeline cap).
  void ParseFrames(const std::shared_ptr<Conn>& conn);
  /// Moves the contiguous done-prefix of `conn`'s slots into its outbuf.
  /// Returns true when bytes were appended. Caller holds conn->mu.
  bool HarvestLocked(Conn* conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  /// Executes one request against the database (worker thread).
  Response Execute(const std::shared_ptr<Conn>& conn, const Request& req);
  void Wake();

  Database* db_ = nullptr;
  ServerOptions opts_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Work queue: connections with a non-empty exec_queue, each claimed by
  // exactly one worker at a time (Conn::exec_scheduled).
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Conn>> work_;
  bool workers_stop_ = false;  // under work_mu_

  // Conn registry: owned by the I/O thread; the mutex covers the map for
  // open_connections() and Stop's inspection, not per-conn state.
  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_done_{false};
  std::once_flag stop_once_;

  // net.* metrics (registered on the Database's registry at Start).
  obs::Gauge* connections_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Histogram* pipeline_depth_ = nullptr;
  obs::Histogram* request_ns_ = nullptr;
};

}  // namespace net
}  // namespace kimdb

#endif  // KIMDB_NET_SERVER_H_
