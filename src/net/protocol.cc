#include "net/protocol.h"

#include <cstring>

namespace kimdb {
namespace net {

namespace {

/// Frames `payload` (type byte already included) into `dst`.
void PutFrame(std::string* dst, std::string_view payload) {
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  dst->append(payload);
}

}  // namespace

bool IsValidMsgType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kMetrics);
}

void EncodeRequest(const Request& req, std::string* dst) {
  std::string payload;
  PutFixed8(&payload, static_cast<uint8_t>(req.type));
  switch (req.type) {
    case MsgType::kHello:
      PutLengthPrefixed(&payload, req.text);
      PutFixed32(&payload, kProtocolVersion);
      break;
    case MsgType::kPing:
    case MsgType::kTxnBegin:
    case MsgType::kMetrics:
      break;
    case MsgType::kGet:
      PutFixed64(&payload, req.oid);
      break;
    case MsgType::kQuery:
    case MsgType::kExplain:
      PutLengthPrefixed(&payload, req.text);
      break;
    case MsgType::kTxnSet:
      PutFixed64(&payload, req.txn);
      PutFixed64(&payload, req.oid);
      PutLengthPrefixed(&payload, req.text);
      req.value.EncodeTo(&payload);
      break;
    case MsgType::kTxnCommit:
    case MsgType::kTxnAbort:
      PutFixed64(&payload, req.txn);
      break;
  }
  PutFrame(dst, payload);
}

void EncodeResponse(const Response& resp, std::string* dst) {
  std::string payload;
  PutFixed8(&payload, static_cast<uint8_t>(resp.type));
  PutFixed8(&payload, static_cast<uint8_t>(resp.status));
  if (resp.status != StatusCode::kOk) {
    PutLengthPrefixed(&payload, resp.message);
    PutFrame(dst, payload);
    return;
  }
  switch (resp.type) {
    case MsgType::kHello:
      PutLengthPrefixed(&payload, resp.text);
      PutFixed32(&payload, kProtocolVersion);
      break;
    case MsgType::kPing:
    case MsgType::kTxnSet:
    case MsgType::kTxnCommit:
    case MsgType::kTxnAbort:
      break;
    case MsgType::kGet:
      PutLengthPrefixed(&payload, resp.object_bytes);
      break;
    case MsgType::kQuery:
      PutVarint32(&payload, static_cast<uint32_t>(resp.oids.size()));
      for (uint64_t oid : resp.oids) PutFixed64(&payload, oid);
      break;
    case MsgType::kExplain:
    case MsgType::kMetrics:
      PutLengthPrefixed(&payload, resp.text);
      break;
    case MsgType::kTxnBegin:
      PutFixed64(&payload, resp.u64);
      break;
  }
  PutFrame(dst, payload);
}

Result<Request> DecodeRequest(std::string_view payload) {
  Decoder dec(payload);
  KIMDB_ASSIGN_OR_RETURN(uint8_t type, dec.ReadFixed8());
  if (!IsValidMsgType(type)) {
    return Status::Corruption("unknown request type " + std::to_string(type));
  }
  Request req;
  req.type = static_cast<MsgType>(type);
  switch (req.type) {
    case MsgType::kHello: {
      KIMDB_ASSIGN_OR_RETURN(std::string_view name, dec.ReadLengthPrefixed());
      req.text.assign(name);
      // The client's protocol version rides after the name; v1 servers
      // accept any (the banner echoes the server's own version back).
      KIMDB_RETURN_IF_ERROR(dec.ReadFixed32().status());
      break;
    }
    case MsgType::kPing:
    case MsgType::kTxnBegin:
    case MsgType::kMetrics:
      break;
    case MsgType::kGet: {
      KIMDB_ASSIGN_OR_RETURN(req.oid, dec.ReadFixed64());
      break;
    }
    case MsgType::kQuery:
    case MsgType::kExplain: {
      KIMDB_ASSIGN_OR_RETURN(std::string_view oql, dec.ReadLengthPrefixed());
      req.text.assign(oql);
      break;
    }
    case MsgType::kTxnSet: {
      KIMDB_ASSIGN_OR_RETURN(req.txn, dec.ReadFixed64());
      KIMDB_ASSIGN_OR_RETURN(req.oid, dec.ReadFixed64());
      KIMDB_ASSIGN_OR_RETURN(std::string_view attr, dec.ReadLengthPrefixed());
      req.text.assign(attr);
      KIMDB_ASSIGN_OR_RETURN(req.value, Value::DecodeFrom(&dec));
      break;
    }
    case MsgType::kTxnCommit:
    case MsgType::kTxnAbort: {
      KIMDB_ASSIGN_OR_RETURN(req.txn, dec.ReadFixed64());
      break;
    }
  }
  if (!dec.empty()) {
    return Status::Corruption("trailing bytes in request frame");
  }
  return req;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Decoder dec(payload);
  KIMDB_ASSIGN_OR_RETURN(uint8_t type, dec.ReadFixed8());
  if (!IsValidMsgType(type)) {
    return Status::Corruption("unknown response type " + std::to_string(type));
  }
  Response resp;
  resp.type = static_cast<MsgType>(type);
  KIMDB_ASSIGN_OR_RETURN(uint8_t code, dec.ReadFixed8());
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  resp.status = static_cast<StatusCode>(code);
  if (resp.status != StatusCode::kOk) {
    KIMDB_ASSIGN_OR_RETURN(std::string_view msg, dec.ReadLengthPrefixed());
    resp.message.assign(msg);
    if (!dec.empty()) {
      return Status::Corruption("trailing bytes in error response");
    }
    return resp;
  }
  switch (resp.type) {
    case MsgType::kHello: {
      KIMDB_ASSIGN_OR_RETURN(std::string_view banner,
                             dec.ReadLengthPrefixed());
      resp.text.assign(banner);
      KIMDB_RETURN_IF_ERROR(dec.ReadFixed32().status());
      break;
    }
    case MsgType::kPing:
    case MsgType::kTxnSet:
    case MsgType::kTxnCommit:
    case MsgType::kTxnAbort:
      break;
    case MsgType::kGet: {
      KIMDB_ASSIGN_OR_RETURN(std::string_view obj, dec.ReadLengthPrefixed());
      resp.object_bytes.assign(obj);
      break;
    }
    case MsgType::kQuery: {
      KIMDB_ASSIGN_OR_RETURN(uint32_t n, dec.ReadVarint32());
      resp.oids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        KIMDB_ASSIGN_OR_RETURN(uint64_t oid, dec.ReadFixed64());
        resp.oids.push_back(oid);
      }
      break;
    }
    case MsgType::kExplain:
    case MsgType::kMetrics: {
      KIMDB_ASSIGN_OR_RETURN(std::string_view text, dec.ReadLengthPrefixed());
      resp.text.assign(text);
      break;
    }
    case MsgType::kTxnBegin: {
      KIMDB_ASSIGN_OR_RETURN(resp.u64, dec.ReadFixed64());
      break;
    }
  }
  if (!dec.empty()) {
    return Status::Corruption("trailing bytes in response frame");
  }
  return resp;
}

Result<bool> FrameReader::Next(std::string* out) {
  if (poisoned_) {
    return Status::Corruption("frame stream poisoned by a protocol error");
  }
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived pipelined connection doesn't grow its read buffer forever.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  uint32_t len = DecodeFixed32(buf_.data() + pos_);
  if (len == 0 || len > max_frame_) {
    poisoned_ = true;
    return Status::Corruption("frame length " + std::to_string(len) +
                              " outside (0, " + std::to_string(max_frame_) +
                              "]");
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + len) return false;
  out->assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return true;
}

}  // namespace net
}  // namespace kimdb
