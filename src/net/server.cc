#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/database.h"

namespace kimdb {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Response ErrorResponse(MsgType type, const Status& st) {
  Response resp;
  resp.type = type;
  resp.status = st.code();
  resp.message = st.message();
  return resp;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              const ServerOptions& opts) {
  auto srv = std::unique_ptr<Server>(new Server());
  srv->db_ = db;
  srv->opts_ = opts;
  if (srv->opts_.workers == 0) srv->opts_.workers = 1;
  if (srv->opts_.max_pipeline == 0) srv->opts_.max_pipeline = 1;

  srv->listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (srv->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(srv->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable IPv4 host: " + opts.host);
  }
  if (::bind(srv->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(srv->listen_fd_, opts.listen_backlog) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  KIMDB_RETURN_IF_ERROR(SetNonBlocking(srv->listen_fd_));

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(srv->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  srv->port_ = ntohs(bound.sin_port);

  srv->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  srv->wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (srv->epoll_fd_ < 0 || srv->wake_fd_ < 0) {
    return Status::IOError(std::string("epoll/eventfd: ") +
                           std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = srv->listen_fd_;
  if (::epoll_ctl(srv->epoll_fd_, EPOLL_CTL_ADD, srv->listen_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = srv->wake_fd_;
  if (::epoll_ctl(srv->epoll_fd_, EPOLL_CTL_ADD, srv->wake_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }

  // The server's observability lives in the database's registry, so one
  // snapshot covers the engine and its front-end (ISSUE: loadgen reads
  // p50/p95/p99 and pipeline depth straight from registry diffs).
  obs::MetricsRegistry& m = db->metrics();
  srv->connections_ = m.GetGauge("net.connections");
  srv->accepted_ = m.GetCounter("net.accepted");
  srv->requests_ = m.GetCounter("net.requests");
  srv->bytes_in_ = m.GetCounter("net.bytes_in");
  srv->bytes_out_ = m.GetCounter("net.bytes_out");
  srv->protocol_errors_ = m.GetCounter("net.protocol_errors");
  srv->pipeline_depth_ = m.GetHistogram("net.pipeline_depth");
  srv->request_ns_ = m.GetHistogram("net.request_ns");

  // Database::Close stops the front-end first, so no worker can run a
  // request against a half-torn-down engine.
  Server* raw = srv.get();
  db->SetFrontendStopHook([raw] { raw->Stop(); });

  srv->io_thread_ = std::thread([raw] { raw->IoLoop(); });
  for (size_t i = 0; i < srv->opts_.workers; ++i) {
    srv->workers_.emplace_back([raw] { raw->WorkerLoop(); });
  }
  return srv;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    Wake();
    if (io_thread_.joinable()) io_thread_.join();
    {
      std::lock_guard<std::mutex> lk(work_mu_);
      workers_stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    // The database may outlive the server; a dangling hook must not.
    if (db_ != nullptr) db_->SetFrontendStopHook(nullptr);
  });
}

size_t Server::open_connections() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return conns_.size();
}

void Server::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means a wake is already pending -- good enough
}

void Server::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  while (true) {
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      // Drain mode: no new connections, no new bytes; every request
      // already received (including frames still buffered but unparsed)
      // runs to completion and its response flushes before close.
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(opts_.drain_timeout_ms);
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (auto& [fd, c] : conns_) snapshot.push_back(c);
      }
      for (auto& c : snapshot) {
        // One last read: bytes the kernel already delivered are in-flight
        // requests and must run to completion before the close.
        HandleReadable(c);
        {
          std::lock_guard<std::mutex> lk(c->mu);
          c->read_eof = true;
          c->close_after_flush = true;
        }
        ParseFrames(c);      // frames buffered but not yet parsed
        HandleWritable(c);   // flush + close if already idle
      }
    }

    if (draining) {
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (auto& [fd, c] : conns_) snapshot.push_back(c);
      }
      bool timed_out =
          std::chrono::steady_clock::now() >= drain_deadline;
      for (auto& c : snapshot) {
        if (timed_out) {
          CloseConn(c);
          continue;
        }
        HandleWritable(c);  // harvest finished slots, flush, maybe close
      }
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (conns_.empty()) break;
    }

    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, draining ? 20 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        // Workers finished slots (or Stop was requested): harvest every
        // connection with completed work and resume paused readers.
        std::vector<std::shared_ptr<Conn>> snapshot;
        {
          std::lock_guard<std::mutex> lk(conns_mu_);
          for (auto& [cfd, c] : conns_) snapshot.push_back(c);
        }
        for (auto& c : snapshot) {
          HandleWritable(c);
          bool resume = false;
          {
            std::lock_guard<std::mutex> lk(c->mu);
            if (c->paused && c->slots.size() <= opts_.max_pipeline / 2) {
              c->paused = false;
              resume = true;
            }
          }
          if (resume) {
            // The edge that delivered those bytes has passed; parse the
            // backlog and re-read explicitly.
            ParseFrames(c);
            HandleReadable(c);
          }
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (!draining) HandleAcceptable();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // already closed this pass
        conn = it->second;
      }
      if (mask & (EPOLLERR | EPOLLHUP)) {
        CloseConn(conn);
        continue;
      }
      if (mask & (EPOLLIN | EPOLLRDHUP)) HandleReadable(conn);
      if (mask & EPOLLOUT) HandleWritable(conn);
    }
  }

  // Final pass: every connection is gone; abort nothing here (CloseConn
  // already did), just make sure the listen socket is closed.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::HandleAcceptable() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the next edge retries
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(opts_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_[fd] = conn;
    }
    accepted_->Inc();
    connections_->Add(1);
    HandleReadable(conn);  // data may have raced the accept edge
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed || conn->read_eof || conn->paused) return;
  }
  char buf[64 * 1024];
  bool eof = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_->Inc(static_cast<uint64_t>(n));
      conn->reader.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard error: treat as peer-gone
    break;
  }
  ParseFrames(conn);
  if (eof) {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->read_eof = true;
    conn->close_after_flush = true;
  }
  HandleWritable(conn);  // flush whatever harvested; maybe close
}

void Server::ParseFrames(const std::shared_ptr<Conn>& conn) {
  while (true) {
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      if (conn->closed) return;
      if (conn->slots.size() >= opts_.max_pipeline) {
        conn->paused = true;
        return;
      }
    }
    std::string payload;
    Result<bool> got = conn->reader.Next(&payload);
    if (!got.ok()) {
      // Oversized frame or poisoned stream: count it, close cleanly after
      // flushing responses already owed.
      protocol_errors_->Inc();
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->read_eof = true;
      conn->close_after_flush = true;
      return;
    }
    if (!*got) return;  // need more bytes
    Result<Request> req = DecodeRequest(payload);
    if (!req.ok()) {
      protocol_errors_->Inc();
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->read_eof = true;
      conn->close_after_flush = true;
      return;
    }
    auto slot = std::make_unique<Slot>();
    slot->req = std::move(*req);
    slot->t0 = std::chrono::steady_clock::now();
    Slot* raw = slot.get();
    size_t depth;
    bool schedule;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->slots.push_back(std::move(slot));
      conn->exec_queue.push_back(raw);
      depth = conn->slots.size();
      schedule = !conn->exec_scheduled;
      if (schedule) conn->exec_scheduled = true;
    }
    requests_->Inc();
    pipeline_depth_->Record(depth);
    if (schedule) {
      {
        std::lock_guard<std::mutex> lk(work_mu_);
        work_.push_back(conn);
      }
      work_cv_.notify_one();
    }
  }
}

bool Server::HarvestLocked(Conn* conn) {
  bool any = false;
  while (!conn->slots.empty() && conn->slots.front()->done) {
    conn->outbuf.append(conn->slots.front()->bytes);
    conn->slots.pop_front();
    any = true;
  }
  return any;
}

void Server::HandleWritable(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    HarvestLocked(conn.get());
    while (conn->outpos < conn->outbuf.size()) {
      ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                         conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
      if (n > 0) {
        bytes_out_->Inc(static_cast<uint64_t>(n));
        conn->outpos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        conn->want_write = true;
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // peer vanished mid-flush
      break;
    }
    if (conn->outpos == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->outpos = 0;
      conn->want_write = false;
      if (conn->close_after_flush && conn->slots.empty()) close_now = true;
    }
  }
  if (close_now) CloseConn(conn);
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  std::vector<uint64_t> orphaned;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    orphaned.assign(conn->open_txns.begin(), conn->open_txns.end());
    conn->open_txns.clear();
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(conn->fd);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_->Add(-1);
  // A vanished client must not leave active transactions behind: they
  // would pin locks and wedge every future checkpoint.
  for (uint64_t txn : orphaned) {
    Status st = db_->Abort(txn);
    (void)st;  // the txn may have committed/aborted through another path
  }
}

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      work_cv_.wait(lk, [this] { return workers_stop_ || !work_.empty(); });
      if (work_.empty()) return;  // workers_stop_ and drained
      conn = std::move(work_.front());
      work_.pop_front();
    }
    // Drain this connection's queue serially: pipelined operations on the
    // same transaction must not race each other across workers.
    while (true) {
      Slot* slot = nullptr;
      bool skip = false;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        if (conn->exec_queue.empty()) {
          conn->exec_scheduled = false;
          break;
        }
        slot = conn->exec_queue.front();
        conn->exec_queue.pop_front();
        skip = conn->closed;
      }
      Response resp;
      if (!skip) {
        resp = Execute(conn, slot->req);
      }
      std::string bytes;
      EncodeResponse(resp, &bytes);
      request_ns_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - slot->t0)
              .count()));
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        slot->bytes = std::move(bytes);
        slot->done = true;
      }
      Wake();  // the I/O thread harvests + flushes in arrival order
    }
  }
}

Response Server::Execute(const std::shared_ptr<Conn>& conn,
                         const Request& req) {
  Response resp;
  resp.type = req.type;
  switch (req.type) {
    case MsgType::kHello:
      resp.text = "kimdb";
      break;
    case MsgType::kPing:
      break;
    case MsgType::kGet: {
      Result<Object> obj = db_->store().Get(Oid(req.oid));
      if (!obj.ok()) return ErrorResponse(req.type, obj.status());
      obj->EncodeTo(&resp.object_bytes);
      break;
    }
    case MsgType::kQuery: {
      Result<std::vector<Oid>> oids = db_->ExecuteOql(req.text);
      if (!oids.ok()) return ErrorResponse(req.type, oids.status());
      resp.oids.reserve(oids->size());
      for (Oid oid : *oids) resp.oids.push_back(oid.raw());
      break;
    }
    case MsgType::kExplain: {
      Result<QueryPlan> plan = db_->ExplainOql(req.text);
      if (!plan.ok()) return ErrorResponse(req.type, plan.status());
      resp.text = plan->ToString();
      break;
    }
    case MsgType::kTxnBegin: {
      Result<uint64_t> txn = db_->Begin();
      if (!txn.ok()) return ErrorResponse(req.type, txn.status());
      resp.u64 = *txn;
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->open_txns.insert(*txn);
      break;
    }
    case MsgType::kTxnSet: {
      Status st = db_->Set(req.txn, Oid(req.oid), req.text, req.value);
      if (!st.ok()) return ErrorResponse(req.type, st);
      break;
    }
    case MsgType::kTxnCommit: {
      Status st = db_->Commit(req.txn);
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        conn->open_txns.erase(req.txn);
      }
      if (!st.ok()) return ErrorResponse(req.type, st);
      break;
    }
    case MsgType::kTxnAbort: {
      Status st = db_->Abort(req.txn);
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        conn->open_txns.erase(req.txn);
      }
      if (!st.ok()) return ErrorResponse(req.type, st);
      break;
    }
    case MsgType::kMetrics:
      resp.text = db_->MetricsJson();
      break;
  }
  return resp;
}

}  // namespace net
}  // namespace kimdb
