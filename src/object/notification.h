#ifndef KIMDB_OBJECT_NOTIFICATION_H_
#define KIMDB_OBJECT_NOTIFICATION_H_

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "object/object_store.h"

namespace kimdb {

/// A change observed on a subscribed object or class.
struct ChangeEvent {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  Oid oid;
};

/// Change notification (paper §3.3, CHOU88): both modes the literature
/// distinguishes are supported --
///
///  * *message-based* notification: a callback fires immediately when a
///    subscribed object/class changes;
///  * *flag-based* notification: events queue per subscription and are
///    collected later with Drain() (the CAx pattern: a designer checks
///    whether anything they depend on changed since they last looked).
class ChangeNotifier : public ObjectStoreListener {
 public:
  using Callback = std::function<void(const ChangeEvent&)>;
  using SubscriptionId = uint64_t;

  explicit ChangeNotifier(ObjectStore* store) : store_(store) {
    store->AddListener(this);
  }
  ~ChangeNotifier() override { store_->RemoveListener(this); }

  ChangeNotifier(const ChangeNotifier&) = delete;
  ChangeNotifier& operator=(const ChangeNotifier&) = delete;

  /// Subscribes to changes of one object. Null callback = flag-based only.
  SubscriptionId SubscribeObject(Oid oid, Callback cb = nullptr);
  /// Subscribes to changes of any instance of a class (exact class, not
  /// the hierarchy; subscribe per subclass for hierarchy scope).
  SubscriptionId SubscribeClass(ClassId cls, Callback cb = nullptr);
  void Unsubscribe(SubscriptionId id);

  /// Returns and clears the queued events of a subscription.
  std::vector<ChangeEvent> Drain(SubscriptionId id);
  bool HasPending(SubscriptionId id) const;

  // ObjectStoreListener
  void OnInsert(const Object& obj) override;
  void OnUpdate(const Object& before, const Object& after) override;
  void OnDelete(const Object& before) override;

 private:
  struct Subscription {
    bool by_class = false;
    Oid oid;
    ClassId cls = kInvalidClassId;
    Callback cb;
    std::vector<ChangeEvent> pending;
  };

  void Dispatch(const ChangeEvent& ev);

  ObjectStore* store_;
  /// Guards next_id_ and subs_: Dispatch runs from store listener
  /// callbacks, which fire concurrently for distinct classes (per-class
  /// write latches, DESIGN.md §14). Message-based callbacks are invoked
  /// *outside* the mutex so they may call back into the notifier; a
  /// callback can therefore still fire once after Unsubscribe returns.
  mutable std::mutex mu_;
  SubscriptionId next_id_ = 1;
  std::unordered_map<SubscriptionId, Subscription> subs_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_NOTIFICATION_H_
