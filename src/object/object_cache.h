#ifndef KIMDB_OBJECT_OBJECT_CACHE_H_
#define KIMDB_OBJECT_OBJECT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "model/object.h"
#include "model/oid.h"

namespace kimdb {

/// Point-in-time counters of one ObjectCache (all monotonic except the
/// resident_* levels). Read via ObjectCache::stats(); the obs registry
/// pulls them through collectors (`objectstore.cache_*`).
struct ObjectCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t resident_objects = 0;
  uint64_t resident_bytes = 0;
};

/// Bounded, sharded OID -> deserialized-Object cache: the ORION-style
/// resident-object table of paper §3.3. A hit hands back a shared
/// reference to the *materialized*, immutable resident image (schema
/// defaults filled, dropped attrs elided) without touching the heap file
/// or the decoder -- the repeated-traversal object faults that dominate
/// OODB workloads (OO1/OCB) become map lookups plus one refcount bump.
/// Invalidation and eviction only drop the table's reference; a reader
/// still holding the pointer keeps a consistent (by-then-stale) snapshot
/// alive, which is exactly the read-your-lookup semantics a by-value Get
/// already had.
///
/// Consistency rules (enforced by ObjectStore, documented in DESIGN.md
/// §12): every committed-path and undo/redo-path mutation invalidates the
/// OID before listeners run; entries are tagged with the catalog schema
/// version at insert time so lazy schema evolution can never serve an
/// image materialized against a stale schema (a version-mismatched hit is
/// self-invalidating). Entries are only inserted while the reader holds
/// the store's shared lock, so an insert can never race a writer's
/// invalidation and resurrect a stale image.
///
/// Eviction is per-shard CLOCK over a byte budget: a hit sets the entry's
/// reference bit; the sweep hand clears bits until it finds a cold entry.
/// A capacity of 0 disables the cache entirely (Lookup always misses and
/// records nothing, Insert is a no-op) -- the A/B "decode per read"
/// baseline.
///
/// Thread safety: fully internally synchronized (per-shard mutex, atomic
/// counters); safe to call from any number of reader and writer threads.
class ObjectCache {
 public:
  explicit ObjectCache(size_t capacity_bytes);

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;

  bool enabled() const {
    return capacity_bytes_.load(std::memory_order_relaxed) > 0;
  }
  size_t capacity_bytes() const {
    return capacity_bytes_.load(std::memory_order_relaxed);
  }

  /// Retargets the byte budget (shell `.set cache_bytes N`). Shrinking
  /// evicts immediately; 0 disables the cache and drops everything.
  void Resize(size_t capacity_bytes);

  /// Returns a shared reference to the cached image if present and
  /// materialized against `schema_version`, nullptr otherwise; a version
  /// mismatch erases the entry and misses. Counts one hit or one miss
  /// (disabled caches count nothing).
  std::shared_ptr<const Object> Lookup(Oid oid, uint64_t schema_version);

  /// Snapshot-read variant: additionally requires the entry's commit-ts
  /// tag to be <= read_ts. A live entry is always the *newest* committed
  /// image (mutators invalidate at staging), so a tag at or below the
  /// snapshot is exactly the version the snapshot must see; a tag above it
  /// misses without invalidating (the older version lives in the MVCC
  /// chain, not here).
  std::shared_ptr<const Object> LookupSnapshot(Oid oid,
                                               uint64_t schema_version,
                                               uint64_t read_ts);

  /// Inserts (or replaces) the materialized image, evicting cold entries
  /// until the shard fits its byte budget. Objects larger than half a
  /// shard's budget are not cached (they would wipe the whole shard for
  /// one entry). The by-value overload copies; the shared overload
  /// adopts the caller's (immutable) instance without a copy.
  /// `commit_ts` tags the image with the commit timestamp it reflects
  /// (0 when the store has no MVCC table or the object has no chain).
  void Insert(Oid oid, const Object& obj, uint64_t schema_version,
              uint64_t commit_ts = 0);
  void Insert(Oid oid, std::shared_ptr<const Object> obj,
              uint64_t schema_version, uint64_t commit_ts = 0);

  /// Drops the entry (mutation, undo, redo). Counts an invalidation only
  /// if the OID was resident.
  void Invalidate(Oid oid);

  /// Drops everything (extent rewrite, recovery).
  void Clear();

  ObjectCacheStats stats() const;

  /// Rough resident size of an object: struct overhead plus per-attribute
  /// payload (string capacities, collection elements). Used for the byte
  /// budget; exactness is not required, only monotonicity in object size.
  static size_t ApproxBytes(const Object& obj);

 private:
  static constexpr size_t kShards = 8;  // power of two

  struct Entry {
    std::shared_ptr<const Object> obj;
    uint64_t schema_version = 0;
    uint64_t commit_ts = 0;  // commit timestamp the image reflects
    size_t bytes = 0;
    bool ref = false;  // CLOCK reference bit
    std::list<Oid>::iterator ring_it;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<Oid, Entry> map;
    std::list<Oid> ring;  // CLOCK order; hand_ sweeps this
    std::list<Oid>::iterator hand;
    size_t bytes = 0;
    Shard() : hand(ring.end()) {}
  };

  Shard& ShardFor(Oid oid) {
    return shards_[std::hash<Oid>{}(oid) & (kShards - 1)];
  }

  /// Removes one entry; advances the hand past it first if necessary.
  /// Caller holds the shard mutex.
  void EraseLocked(Shard& sh, std::unordered_map<Oid, Entry>::iterator it);

  /// CLOCK sweep until `need` more bytes fit in the shard budget.
  /// Caller holds the shard mutex.
  void EvictForLocked(Shard& sh, size_t need);

  std::atomic<size_t> capacity_bytes_;
  std::atomic<size_t> shard_capacity_;
  Shard shards_[kShards];

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> resident_objects_{0};
  std::atomic<uint64_t> resident_bytes_{0};
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_OBJECT_CACHE_H_
