#include "object/roles.h"

namespace kimdb {

Result<Oid> RoleManager::AcquireRole(uint64_t txn, Oid player,
                                     ClassId role_class, Object attrs) {
  if (!store_->Exists(player)) {
    return Status::NotFound("player does not exist");
  }
  if (HasRole(player, role_class)) {
    return Status::AlreadyExists(
        "player already holds a role of this class");
  }
  attrs.Set(kAttrRoleOf, Value::Ref(player));
  KIMDB_ASSIGN_OR_RETURN(
      Oid role, store_->Insert(txn, role_class, std::move(attrs), player));

  KIMDB_ASSIGN_OR_RETURN(Object p, store_->GetRaw(player));
  std::vector<Value> roles;
  if (p.Get(kAttrRoles).is_collection()) {
    roles = p.Get(kAttrRoles).elements();
  }
  roles.push_back(Value::Ref(role));
  p.Set(kAttrRoles, Value::Set(std::move(roles)));
  KIMDB_RETURN_IF_ERROR(store_->Update(txn, p));
  return role;
}

Status RoleManager::AbandonRole(uint64_t txn, Oid player,
                                ClassId role_class) {
  KIMDB_ASSIGN_OR_RETURN(Oid role, RoleAs(player, role_class));
  KIMDB_ASSIGN_OR_RETURN(Object p, store_->GetRaw(player));
  std::vector<Value> kept;
  for (const Value& v : p.Get(kAttrRoles).elements()) {
    if (!(v.kind() == Value::Kind::kRef && v.as_ref() == role)) {
      kept.push_back(v);
    }
  }
  if (kept.empty()) {
    p.Unset(kAttrRoles);
  } else {
    p.Set(kAttrRoles, Value::Set(std::move(kept)));
  }
  KIMDB_RETURN_IF_ERROR(store_->Update(txn, p));
  return store_->Delete(txn, role);
}

Result<std::vector<Oid>> RoleManager::RolesOf(Oid player) const {
  KIMDB_ASSIGN_OR_RETURN(Object p, store_->GetRaw(player));
  std::vector<Oid> out;
  const Value& roles = p.Get(kAttrRoles);
  if (roles.is_collection()) {
    for (const Value& v : roles.elements()) {
      if (v.kind() == Value::Kind::kRef) out.push_back(v.as_ref());
    }
  }
  return out;
}

Result<Oid> RoleManager::RoleAs(Oid player, ClassId role_class) const {
  KIMDB_ASSIGN_OR_RETURN(std::vector<Oid> roles, RolesOf(player));
  const Catalog& cat = *store_->catalog();
  for (Oid role : roles) {
    // A role of a subclass of `role_class` counts (IS-A applies to roles).
    if (cat.IsSubclassOf(role.class_id(), role_class)) return role;
  }
  return Status::NotFound("player holds no role of this class");
}

bool RoleManager::HasRole(Oid player, ClassId role_class) const {
  return RoleAs(player, role_class).ok();
}

Result<Oid> RoleManager::PlayerOf(Oid role) const {
  KIMDB_ASSIGN_OR_RETURN(Object r, store_->GetRaw(role));
  const Value& of = r.Get(kAttrRoleOf);
  if (of.kind() != Value::Kind::kRef) {
    return Status::NotFound("object is not a role");
  }
  return of.as_ref();
}

}  // namespace kimdb
