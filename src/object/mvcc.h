#ifndef KIMDB_OBJECT_MVCC_H_
#define KIMDB_OBJECT_MVCC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/object.h"
#include "model/oid.h"

namespace kimdb {

class MvccTable;

/// RAII read-timestamp handle. An active snapshot pins every committed
/// version with commit-ts > read_ts' predecessor against pruning, so a
/// reader carrying it sees one transaction-consistent state of the store
/// no matter how long it lives (the paper's long-duration transaction,
/// §3.3). Move-only; releasing (or destroying) it retires the pin.
class Snapshot {
 public:
  Snapshot() = default;
  ~Snapshot() { Release(); }
  Snapshot(Snapshot&& other) noexcept
      : table_(other.table_), read_ts_(other.read_ts_) {
    other.table_ = nullptr;
    other.read_ts_ = 0;
  }
  Snapshot& operator=(Snapshot&& other) noexcept {
    if (this != &other) {
      Release();
      table_ = other.table_;
      read_ts_ = other.read_ts_;
      other.table_ = nullptr;
      other.read_ts_ = 0;
    }
    return *this;
  }
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  bool active() const { return table_ != nullptr; }
  uint64_t read_ts() const { return read_ts_; }
  /// Retires the pin (idempotent). Triggers a prune pass so versions kept
  /// alive only for this snapshot are reclaimed promptly.
  void Release();

 private:
  friend class MvccTable;
  Snapshot(MvccTable* table, uint64_t read_ts)
      : table_(table), read_ts_(read_ts) {}
  MvccTable* table_ = nullptr;
  uint64_t read_ts_ = 0;
};

/// Point-in-time counters of the MVCC table (read via collectors as
/// `txn.snapshot_*` / `objectstore.versions_*`).
struct MvccStats {
  uint64_t snapshots_acquired = 0;
  uint64_t snapshots_live = 0;
  uint64_t commit_ts = 0;   // newest allocated commit timestamp
  uint64_t visible_ts = 0;  // newest durably published timestamp
  uint64_t write_conflicts = 0;
  uint64_t versions_installed = 0;
  uint64_t versions_pruned = 0;
  uint64_t versions_chains = 0;
  uint64_t versions_entries = 0;
};

/// Outcome of resolving an OID against the version table.
enum class MvccLookup {
  kNoChain,    // no chain: the committed heap image is authoritative
  kImage,      // out-param holds the visible version
  kInvisible,  // a chain exists but nothing is visible at read_ts
               // (deleted before, or born after, the snapshot)
};

/// In-memory commit-timestamp version table: the multiversion half of the
/// concurrency protocol (DESIGN.md §13). Writers stay under 2PL X locks
/// and stage copy-on-write version chains here as they mutate the heap in
/// place; commit promotes the staged image with a monotonically increasing
/// commit timestamp; snapshot readers resolve each OID to the newest
/// committed version <= their read_ts without any lock-manager traffic.
///
/// Chain anatomy (per OID, newest committed first):
///
///   pending {txn, image}        -- at most one, guarded by the writer's X
///                                  lock; image == nullptr encodes delete
///   versions [{ts, image}, ...] -- committed history; the tail is the
///                                  "base" anchored on the heap image that
///                                  was committed when the chain was born
///                                  (ts 0 == visible to every snapshot)
///
/// A chain exists only while a writer is in flight or history is still
/// pinned by a live snapshot; the watermark-driven pruner erases versions
/// older than the oldest live read_ts and whole chains once the heap image
/// alone serves every possible reader again. The common no-writer case
/// therefore costs readers exactly one relaxed atomic load.
///
/// Thread safety: fully internally synchronized (sharded chain mutexes,
/// a registry mutex for snapshots, a commit mutex serializing timestamp
/// allocation with WAL commit-record append order).
class MvccTable {
 public:
  MvccTable() = default;
  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  // --- commit clock ---------------------------------------------------------

  /// Newest timestamp whose commit record is durable (WAL synced); the
  /// upper bound for new snapshots.
  uint64_t visible_ts() const {
    return visible_ts_.load(std::memory_order_acquire);
  }

  /// Serializes commit-ts allocation with WAL log-slot *reservation* so
  /// the log's commit order equals timestamp order (recovery relies on a
  /// durable log prefix covering every smaller timestamp). The append and
  /// fdatasync themselves run outside this mutex (DESIGN.md §14).
  std::mutex& commit_mu() { return commit_mu_; }

  /// Next commit timestamp. Caller holds commit_mu().
  uint64_t AllocateCommitTs() {
    return next_ts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publishes `ts` as durable (CAS-max). Callers that allocate and finish
  /// timestamps one at a time under commit_mu() (CommitDirect) may use it
  /// directly; concurrent committers must go through FinishCommit().
  void Publish(uint64_t ts);

  /// Reports that commit `ts` has finished (promoted its versions and
  /// resolved its WAL append, successfully or not). Because appends happen
  /// off commit_mu(), timestamps can finish out of order; this advances
  /// visible_ts only along the *dense* frontier -- the largest ts such that
  /// every timestamp <= ts has finished -- so a snapshot can never read
  /// past a commit that is still promoting. EVERY allocated timestamp must
  /// be reported exactly once, on success and failure paths alike, or the
  /// frontier (and thus every future snapshot) wedges.
  void FinishCommit(uint64_t ts);

  /// Fast-forwards the clock after recovery: the next allocation returns
  /// max_commit_ts + 1 and snapshots see everything replayed.
  void RestoreClock(uint64_t max_commit_ts);

  // --- snapshots ------------------------------------------------------------

  /// Pins the current visible_ts as a read timestamp. Acquisition is
  /// linearized with pruning through the registry mutex, so a snapshot can
  /// never observe a chain pruned past its read_ts.
  Snapshot AcquireSnapshot();

  // --- writer staging (store mutators, under the per-class write latch) -----

  /// Stages `txn`'s write of `oid`: creates the chain if absent (anchoring
  /// `committed_base`, the materialized image committed before this write;
  /// nullptr for a fresh insert) and installs/replaces the pending image
  /// (nullptr encodes delete). The caller serializes writers per object
  /// (2PL X lock) and against readers' heap access (the object's class
  /// write latch).
  void StageWrite(uint64_t txn, Oid oid,
                  std::shared_ptr<const Object> committed_base,
                  std::shared_ptr<const Object> image);

  /// True if `txn` has staged writes (read-only commits skip the clock).
  bool HasWrites(uint64_t txn) const;

  /// Promotes every pending image staged by `txn` to a committed version
  /// tagged `commit_ts`. Runs *outside* commit_mu(): the caller has
  /// reserved (not necessarily appended) the WAL commit record carrying
  /// the same timestamp. Versions are inserted at their ts-sorted chain
  /// position because concurrent committers and CommitDirect can now
  /// interleave per shard. The promoted images stay invisible until
  /// FinishCommit(commit_ts) advances the dense frontier. Returns the
  /// promoted OIDs so a failed commit can Demote() them.
  std::vector<Oid> Promote(uint64_t txn, uint64_t commit_ts);

  /// Reverses a Promote whose WAL commit record failed to become durable:
  /// strips every version tagged `commit_ts` from the chains of `oids` and
  /// re-stages it as `txn`'s pending image, re-arming the write set for
  /// the Abort that must follow. MUST run before FinishCommit(commit_ts)
  /// -- until then the dense frontier is below commit_ts, so no snapshot
  /// can have observed the promoted versions; once demoted, the consumed
  /// timestamp exposes nothing. Re-staging (rather than dropping) keeps
  /// the chains alive and the cache-fill gate closed while the heap still
  /// carries the failed transaction's writes.
  void Demote(uint64_t txn, uint64_t commit_ts, const std::vector<Oid>& oids);

  /// Drops `txn`'s pending images (abort). Call *after* the heap rollback
  /// so the base image and the heap agree once the pending tag is gone.
  void Discard(uint64_t txn);

  /// Records a *non-transactional* write (ObjectStore mutators called with
  /// txn 0: loaders, system-attribute writes, examples) as an instant
  /// commit. If no chain exists and no snapshot is live, this is a no-op --
  /// the heap image alone is the committed state and the write costs no
  /// timestamp. Otherwise the write is versioned exactly like a committed
  /// transaction: the chain is created if needed (anchoring
  /// `committed_base`), the new image is installed at a freshly allocated
  /// timestamp, and the timestamp is published -- so live snapshots keep
  /// reading their pinned epoch even across direct writes. Never leaves a
  /// pending entry (txn 0 has no commit/abort to resolve one).
  void CommitDirect(Oid oid, std::shared_ptr<const Object> committed_base,
                    std::shared_ptr<const Object> image);

  // --- readers --------------------------------------------------------------

  /// Cheap pre-filter: false guarantees no chain exists for any object of
  /// `cls` right now (one relaxed load, no mutex). May return true
  /// spuriously.
  bool MayHaveVersions(ClassId cls) const {
    if (total_chains_.load(std::memory_order_relaxed) == 0) return false;
    return class_chains_[cls & (kClassSlots - 1)].load(
               std::memory_order_relaxed) > 0;
  }

  /// Resolves `oid` to the newest committed version <= read_ts.
  MvccLookup Resolve(Oid oid, uint64_t read_ts,
                     std::shared_ptr<const Object>* image) const;

  /// `txn`'s own pending write of `oid`, if any (read-your-own-writes).
  /// Returns true with *image set (nullptr == pending delete).
  bool PendingByTxn(uint64_t txn, Oid oid,
                    std::shared_ptr<const Object>* image) const;

  /// Commit-ts of the newest committed version of `oid` (0 if no chain or
  /// only the base). First-committer-wins: a writer holding a snapshot at
  /// read_ts aborts if this exceeds read_ts.
  uint64_t NewestCommittedTs(Oid oid) const;

  /// Cache-fill gate: false while a pending write exists (the heap image
  /// is dirty -- do not cache); otherwise sets *ts to the tag a cache
  /// entry filled from the heap must carry (newest committed ts, 0 if no
  /// chain).
  bool CacheFillTs(Oid oid, uint64_t* ts) const;

  /// Every chain entry of `cls` visible at `read_ts`, sorted by OID (the
  /// end-of-scan ghost pass: versions whose heap record moved or vanished
  /// mid-scan).
  std::vector<std::pair<Oid, std::shared_ptr<const Object>>> CollectVisible(
      ClassId cls, uint64_t read_ts) const;

  // --- maintenance ----------------------------------------------------------

  /// Trims every chain to the newest version <= the watermark (the oldest
  /// live read_ts, capped by visible_ts) and erases chains whose remaining
  /// history the heap image alone can serve. Ran on snapshot release and
  /// after every publish.
  void Prune();

  void CountConflict() {
    write_conflicts_.fetch_add(1, std::memory_order_relaxed);
  }

  MvccStats stats() const;

 private:
  friend class Snapshot;

  struct Version {
    uint64_t ts = 0;
    std::shared_ptr<const Object> image;  // nullptr == not present
  };
  struct Chain {
    std::vector<Version> versions;  // newest first; back() is the base
    bool has_pending = false;
    uint64_t pending_txn = 0;
    std::shared_ptr<const Object> pending_image;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Oid, Chain> chains;
  };

  static constexpr size_t kShards = 16;        // power of two
  static constexpr size_t kClassSlots = 64;    // power of two

  Shard& ShardFor(Oid oid) const {
    return shards_[std::hash<Oid>{}(oid) & (kShards - 1)];
  }

  void ReleaseSnapshot(uint64_t read_ts);
  uint64_t Watermark() const;

  mutable Shard shards_[kShards];
  /// Per-class-slot chain counts: the reader fast path. Sized a small
  /// power of two; collisions only cost a spurious shard lookup.
  std::atomic<uint64_t> class_chains_[kClassSlots] = {};
  std::atomic<uint64_t> total_chains_{0};
  std::atomic<uint64_t> total_entries_{0};

  std::mutex commit_mu_;
  std::atomic<uint64_t> next_ts_{1};
  std::atomic<uint64_t> visible_ts_{0};

  /// Dense-frontier publish state (FinishCommit). publish_frontier_ is the
  /// largest ts such that every allocated ts <= it has finished;
  /// publish_done_ holds finished timestamps above the frontier.
  std::mutex publish_mu_;
  uint64_t publish_frontier_ = 0;
  std::set<uint64_t> publish_done_;

  mutable std::mutex snap_mu_;
  std::multiset<uint64_t> live_;  // read_ts of live snapshots

  mutable std::mutex ws_mu_;
  std::unordered_map<uint64_t, std::vector<Oid>> write_sets_;

  std::atomic<uint64_t> snapshots_acquired_{0};
  std::atomic<uint64_t> write_conflicts_{0};
  std::atomic<uint64_t> versions_installed_{0};
  std::atomic<uint64_t> versions_pruned_{0};
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_MVCC_H_
