#include "object/notification.h"

namespace kimdb {

ChangeNotifier::SubscriptionId ChangeNotifier::SubscribeObject(Oid oid,
                                                               Callback cb) {
  Subscription s;
  s.by_class = false;
  s.oid = oid;
  s.cb = std::move(cb);
  std::lock_guard<std::mutex> lock(mu_);
  SubscriptionId id = next_id_++;
  subs_[id] = std::move(s);
  return id;
}

ChangeNotifier::SubscriptionId ChangeNotifier::SubscribeClass(ClassId cls,
                                                              Callback cb) {
  Subscription s;
  s.by_class = true;
  s.cls = cls;
  s.cb = std::move(cb);
  std::lock_guard<std::mutex> lock(mu_);
  SubscriptionId id = next_id_++;
  subs_[id] = std::move(s);
  return id;
}

void ChangeNotifier::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  subs_.erase(id);
}

std::vector<ChangeEvent> ChangeNotifier::Drain(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) return {};
  std::vector<ChangeEvent> out = std::move(it->second.pending);
  it->second.pending.clear();
  return out;
}

bool ChangeNotifier::HasPending(SubscriptionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(id);
  return it != subs_.end() && !it->second.pending.empty();
}

void ChangeNotifier::Dispatch(const ChangeEvent& ev) {
  // Flag-based queues fill under the mutex; message callbacks are copied
  // out and invoked after release so a callback may subscribe/unsubscribe
  // without self-deadlocking.
  std::vector<Callback> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, sub] : subs_) {
      bool match = sub.by_class ? sub.cls == ev.oid.class_id()
                                : sub.oid == ev.oid;
      if (!match) continue;
      if (sub.cb) {
        fire.push_back(sub.cb);
      } else {
        sub.pending.push_back(ev);
      }
    }
  }
  for (auto& cb : fire) cb(ev);
}

void ChangeNotifier::OnInsert(const Object& obj) {
  Dispatch(ChangeEvent{ChangeEvent::Kind::kInsert, obj.oid()});
}

void ChangeNotifier::OnUpdate(const Object& /*before*/, const Object& after) {
  Dispatch(ChangeEvent{ChangeEvent::Kind::kUpdate, after.oid()});
}

void ChangeNotifier::OnDelete(const Object& before) {
  Dispatch(ChangeEvent{ChangeEvent::Kind::kDelete, before.oid()});
}

}  // namespace kimdb
