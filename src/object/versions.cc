#include "object/versions.h"

namespace kimdb {

Result<Oid> VersionManager::MakeVersionable(uint64_t txn, Oid first) {
  KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(first));
  if (IsVersion(first) || IsGeneric(first)) {
    return Status::FailedPrecondition("object is already versioned");
  }
  // The generic object is an (empty) instance of the same class carrying
  // only version bookkeeping.
  Object generic;
  generic.Set(kAttrVersions, Value::Set({Value::Ref(first)}));
  generic.Set(kAttrDefaultVersion, Value::Ref(first));
  generic.Set(kAttrNextVersionNumber, Value::Int(2));
  KIMDB_ASSIGN_OR_RETURN(
      Oid generic_oid,
      store_->Insert(txn, first.class_id(), std::move(generic), first));

  obj.Set(kAttrVersionOf, Value::Ref(generic_oid));
  obj.Set(kAttrVersionNumber, Value::Int(1));
  KIMDB_RETURN_IF_ERROR(store_->Update(txn, obj));
  return generic_oid;
}

Result<Oid> VersionManager::DeriveVersion(uint64_t txn, Oid from) {
  KIMDB_ASSIGN_OR_RETURN(Object src, store_->GetRaw(from));
  if (!IsVersion(from)) {
    return Status::FailedPrecondition(
        "can only derive from a version (MakeVersionable first)");
  }
  Oid generic_oid = src.Get(kAttrVersionOf).as_ref();
  KIMDB_ASSIGN_OR_RETURN(Object generic, store_->GetRaw(generic_oid));

  // Next version number: O(1) counter on the generic object; fall back to
  // a max-scan for generic objects written before the counter existed.
  int64_t next_num;
  if (generic.Get(kAttrNextVersionNumber).kind() == Value::Kind::kInt) {
    next_num = generic.Get(kAttrNextVersionNumber).as_int();
  } else {
    next_num = 1;
    for (const Value& v : generic.Get(kAttrVersions).elements()) {
      Result<Object> ver = store_->GetRaw(v.as_ref());
      if (ver.ok() &&
          ver->Get(kAttrVersionNumber).kind() == Value::Kind::kInt) {
        next_num = std::max(next_num,
                            ver->Get(kAttrVersionNumber).as_int() + 1);
      }
    }
  }

  Object copy = src;
  copy.set_oid(kNilOid);
  copy.Set(kAttrDerivedFrom, Value::Ref(from));
  copy.Set(kAttrVersionNumber, Value::Int(next_num));
  copy.Unset(kAttrReleased);
  // A new version starts life outside any composite and unchecked-out;
  // composite membership and checkout state are per-object, not versioned.
  copy.Unset(kAttrPartOf);
  copy.Unset(kAttrCheckedOutBy);
  KIMDB_ASSIGN_OR_RETURN(
      Oid new_oid,
      store_->Insert(txn, from.class_id(), std::move(copy), from));

  std::vector<Value> versions = generic.Get(kAttrVersions).elements();
  versions.push_back(Value::Ref(new_oid));
  generic.Set(kAttrVersions, Value::Set(std::move(versions)));
  generic.Set(kAttrNextVersionNumber, Value::Int(next_num + 1));
  KIMDB_RETURN_IF_ERROR(store_->Update(txn, generic));
  return new_oid;
}

Status VersionManager::Release(uint64_t txn, Oid version) {
  if (!IsVersion(version)) {
    return Status::FailedPrecondition("not a version");
  }
  return store_->SetAttrSystem(txn, version, kAttrReleased,
                               Value::Bool(true));
}

Status VersionManager::SetDefault(uint64_t txn, Oid generic, Oid version) {
  KIMDB_ASSIGN_OR_RETURN(Object g, store_->GetRaw(generic));
  if (!IsGeneric(generic)) {
    return Status::FailedPrecondition("not a generic object");
  }
  bool member = false;
  for (const Value& v : g.Get(kAttrVersions).elements()) {
    if (v.as_ref() == version) {
      member = true;
      break;
    }
  }
  if (!member) {
    return Status::InvalidArgument(
        "version is not a version of this generic object");
  }
  return store_->SetAttrSystem(txn, generic, kAttrDefaultVersion,
                               Value::Ref(version));
}

Result<Oid> VersionManager::Resolve(Oid oid) const {
  if (!IsGeneric(oid)) return oid;
  KIMDB_ASSIGN_OR_RETURN(Object g, store_->GetRaw(oid));
  const Value& def = g.Get(kAttrDefaultVersion);
  if (def.kind() != Value::Kind::kRef) {
    return Status::FailedPrecondition("generic object has no default version");
  }
  return def.as_ref();
}

Result<Oid> VersionManager::GenericOf(Oid version) const {
  KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(version));
  const Value& g = obj.Get(kAttrVersionOf);
  if (g.kind() != Value::Kind::kRef) {
    return Status::NotFound("object is not a version");
  }
  return g.as_ref();
}

Result<std::vector<Oid>> VersionManager::VersionsOf(Oid generic) const {
  KIMDB_ASSIGN_OR_RETURN(Object g, store_->GetRaw(generic));
  if (!g.Has(kAttrVersions)) {
    return Status::NotFound("object is not a generic object");
  }
  std::vector<Oid> out;
  for (const Value& v : g.Get(kAttrVersions).elements()) {
    out.push_back(v.as_ref());
  }
  return out;
}

Result<Oid> VersionManager::DerivedFrom(Oid version) const {
  KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(version));
  const Value& d = obj.Get(kAttrDerivedFrom);
  if (d.kind() != Value::Kind::kRef) {
    return Status::NotFound("version has no predecessor");
  }
  return d.as_ref();
}

Result<int64_t> VersionManager::VersionNumberOf(Oid version) const {
  KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(version));
  const Value& n = obj.Get(kAttrVersionNumber);
  if (n.kind() != Value::Kind::kInt) {
    return Status::NotFound("object is not a version");
  }
  return n.as_int();
}

bool VersionManager::IsGeneric(Oid oid) const {
  Result<Object> obj = store_->GetRaw(oid);
  return obj.ok() && obj->Has(kAttrVersions);
}

bool VersionManager::IsVersion(Oid oid) const {
  Result<Object> obj = store_->GetRaw(oid);
  return obj.ok() && obj->Has(kAttrVersionOf);
}

bool VersionManager::IsReleased(Oid oid) const {
  Result<Object> obj = store_->GetRaw(oid);
  return obj.ok() && obj->Get(kAttrReleased).kind() == Value::Kind::kBool &&
         obj->Get(kAttrReleased).as_bool();
}

Status VersionManager::CheckMutable(Oid oid) const {
  if (IsReleased(oid)) {
    return Status::FailedPrecondition(
        "released versions are immutable; derive a new version");
  }
  return Status::OK();
}

}  // namespace kimdb
