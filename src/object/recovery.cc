#include "object/recovery.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kimdb {
namespace {

// Applies the inverse of one logged operation (full-image undo).
Result<bool> ApplyInverse(ObjectStore* store, const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kInsert:
      KIMDB_RETURN_IF_ERROR(store->ApplyDelete(Oid(rec.key)));
      return true;
    case WalRecordType::kUpdate:
    case WalRecordType::kDelete: {
      KIMDB_ASSIGN_OR_RETURN(Object before, Object::Decode(rec.before));
      KIMDB_RETURN_IF_ERROR(store->ApplyUpdate(before));
      return true;
    }
    default:
      return false;
  }
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - since)
                .count();
  return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

}  // namespace

Result<RecoveryStats> RecoveryManager::Recover(ObjectStore* store, Wal* wal) {
  RecoveryStats stats;
  auto phase_start = std::chrono::steady_clock::now();
  KIMDB_ASSIGN_OR_RETURN(std::vector<WalRecord> log, wal->ReadAll());

  // Analysis: committed / aborted / in-flight per transaction.
  std::unordered_set<uint64_t> committed;
  std::unordered_set<uint64_t> aborted;
  std::unordered_set<uint64_t> seen;
  for (const WalRecord& rec : log) {
    seen.insert(rec.txn_id);
    if (rec.type == WalRecordType::kCommit) {
      committed.insert(rec.txn_id);
      // Commit records carry the MVCC commit timestamp in their key field
      // (0 for pre-MVCC logs and read-only commits).
      stats.max_commit_ts = std::max(stats.max_commit_ts, rec.key);
    }
    if (rec.type == WalRecordType::kAbort) aborted.insert(rec.txn_id);
  }
  stats.committed_txns = committed.size();
  for (uint64_t t : seen) {
    if (committed.count(t)) continue;
    ++stats.losing_txns;
    if (aborted.count(t)) ++stats.aborted_txns;
  }

  stats.analysis_ns = ElapsedNs(phase_start);
  phase_start = std::chrono::steady_clock::now();

  // History replay in LSN order. Committed work is redone where it sits in
  // the log; an aborted transaction's pending operations are inverted at
  // its kAbort record, i.e. exactly where its pre-crash rollback happened
  // relative to every other transaction's writes.
  std::unordered_map<uint64_t, std::vector<const WalRecord*>> pending;
  for (const WalRecord& rec : log) {
    if (committed.count(rec.txn_id)) {
      switch (rec.type) {
        case WalRecordType::kInsert:
        case WalRecordType::kUpdate: {
          KIMDB_ASSIGN_OR_RETURN(Object after, Object::Decode(rec.after));
          KIMDB_RETURN_IF_ERROR(rec.type == WalRecordType::kInsert
                                    ? store->ApplyInsert(after)
                                    : store->ApplyUpdate(after));
          ++stats.redone;
          break;
        }
        case WalRecordType::kDelete:
          KIMDB_RETURN_IF_ERROR(store->ApplyDelete(Oid(rec.key)));
          ++stats.redone;
          break;
        default:
          break;
      }
      continue;
    }
    if (rec.type == WalRecordType::kAbort) {
      auto it = pending.find(rec.txn_id);
      if (it == pending.end()) continue;
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        KIMDB_ASSIGN_OR_RETURN(bool applied, ApplyInverse(store, **rit));
        if (applied) ++stats.undone;
      }
      pending.erase(it);
      continue;
    }
    // Aborted-before-its-kAbort or in-flight: buffer for undo.
    pending[rec.txn_id].push_back(&rec);
  }

  stats.redo_ns = ElapsedNs(phase_start);
  phase_start = std::chrono::steady_clock::now();

  // Undo in-flight transactions in reverse LSN order across the whole log.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const WalRecord& rec = *it;
    auto p = pending.find(rec.txn_id);
    if (p == pending.end()) continue;
    KIMDB_ASSIGN_OR_RETURN(bool applied, ApplyInverse(store, rec));
    if (applied) ++stats.undone;
  }
  stats.undo_ns = ElapsedNs(phase_start);
  return stats;
}

}  // namespace kimdb
