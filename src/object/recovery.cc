#include "object/recovery.h"

#include <unordered_set>

namespace kimdb {

Result<RecoveryStats> RecoveryManager::Recover(ObjectStore* store, Wal* wal) {
  RecoveryStats stats;
  KIMDB_ASSIGN_OR_RETURN(std::vector<WalRecord> log, wal->ReadAll());

  // Analysis.
  std::unordered_set<uint64_t> committed;
  std::unordered_set<uint64_t> seen;
  for (const WalRecord& rec : log) {
    seen.insert(rec.txn_id);
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn_id);
  }
  stats.committed_txns = committed.size();
  for (uint64_t t : seen) {
    if (!committed.count(t)) ++stats.losing_txns;
  }

  // Redo committed work in LSN order.
  for (const WalRecord& rec : log) {
    if (!committed.count(rec.txn_id)) continue;
    switch (rec.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kUpdate: {
        KIMDB_ASSIGN_OR_RETURN(Object after, Object::Decode(rec.after));
        KIMDB_RETURN_IF_ERROR(rec.type == WalRecordType::kInsert
                                  ? store->ApplyInsert(after)
                                  : store->ApplyUpdate(after));
        ++stats.redone;
        break;
      }
      case WalRecordType::kDelete:
        KIMDB_RETURN_IF_ERROR(store->ApplyDelete(Oid(rec.key)));
        ++stats.redone;
        break;
      default:
        break;
    }
  }

  // Undo losing work in reverse LSN order.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const WalRecord& rec = *it;
    if (committed.count(rec.txn_id)) continue;
    switch (rec.type) {
      case WalRecordType::kInsert:
        KIMDB_RETURN_IF_ERROR(store->ApplyDelete(Oid(rec.key)));
        ++stats.undone;
        break;
      case WalRecordType::kUpdate:
      case WalRecordType::kDelete: {
        KIMDB_ASSIGN_OR_RETURN(Object before, Object::Decode(rec.before));
        KIMDB_RETURN_IF_ERROR(store->ApplyUpdate(before));
        ++stats.undone;
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace kimdb
