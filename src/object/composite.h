#ifndef KIMDB_OBJECT_COMPOSITE_H_
#define KIMDB_OBJECT_COMPOSITE_H_

#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "object/object_store.h"

namespace kimdb {

/// Composite objects (paper §3.3, KIM89c): the IS-PART-OF relationship.
/// A component belongs to at most one composite parent (exclusive
/// ownership) and is existentially dependent on it -- deleting the root
/// cascades through the whole composite. The part-of link is stored on the
/// child in the reserved system attribute kAttrPartOf; this manager
/// maintains the inverse (parent -> children) map by listening to the
/// store, and implements the composite operations.
class CompositeManager : public ObjectStoreListener {
 public:
  /// Registers as a listener and builds the child map from existing data.
  static Result<std::unique_ptr<CompositeManager>> Attach(ObjectStore* store);
  ~CompositeManager() override;

  CompositeManager(const CompositeManager&) = delete;
  CompositeManager& operator=(const CompositeManager&) = delete;

  /// Makes `child` an exclusive component of `parent`. Fails if the child
  /// already has a parent or if the link would create a part-of cycle.
  Status AttachChild(uint64_t txn, Oid child, Oid parent);

  /// Severs the part-of link (the child becomes independent).
  Status DetachChild(uint64_t txn, Oid child);

  /// kNilOid if the object is not part of any composite.
  Oid ParentOf(Oid oid) const;
  std::vector<Oid> ChildrenOf(Oid oid) const;

  /// Visits the composite rooted at `root` (root first, depth-first).
  Status ForEachComponent(Oid root,
                          const std::function<Status(Oid)>& fn) const;

  /// Number of objects in the composite including the root.
  Result<uint64_t> ComponentCount(Oid root) const;

  /// Cascading delete: removes every component, leaves first.
  Status DeleteComposite(uint64_t txn, Oid root);

  /// Deep copy of the composite. Component-internal references (refs from
  /// one member to another member of the same composite) are remapped onto
  /// the copies; external references are shared. Copies are clustered near
  /// their new parents. Returns the new root's OID.
  Result<Oid> DeepCopy(uint64_t txn, Oid root);

  // ObjectStoreListener -- keeps the inverse map in sync.
  void OnInsert(const Object& obj) override;
  void OnUpdate(const Object& before, const Object& after) override;
  void OnDelete(const Object& before) override;

 private:
  explicit CompositeManager(ObjectStore* store) : store_(store) {}

  void Link(Oid child, Oid parent);
  void Unlink(Oid child, Oid parent);

  ObjectStore* store_;
  /// Guards children_. On* callbacks run concurrently for distinct classes
  /// (per-class write latches, DESIGN.md §14), and traversals may race
  /// with them. Held only around map access -- never across store calls.
  mutable std::mutex children_mu_;
  std::unordered_map<Oid, std::vector<Oid>> children_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_COMPOSITE_H_
