#include "object/object_cache.h"

#include "model/value.h"

namespace kimdb {

namespace {

size_t ValueBytes(const Value& v) {
  size_t b = sizeof(Value);
  switch (v.kind()) {
    case Value::Kind::kString:
      b += v.as_string().capacity();
      break;
    case Value::Kind::kSet:
    case Value::Kind::kList:
      for (const Value& e : v.elements()) b += ValueBytes(e);
      break;
    default:
      break;
  }
  return b;
}

}  // namespace

size_t ObjectCache::ApproxBytes(const Object& obj) {
  size_t b = sizeof(Object) + sizeof(Entry);
  for (const auto& [attr, value] : obj.attrs()) {
    b += sizeof(AttrId) + ValueBytes(value);
  }
  return b;
}

ObjectCache::ObjectCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(capacity_bytes / kShards) {}

std::shared_ptr<const Object> ObjectCache::Lookup(Oid oid,
                                                  uint64_t schema_version) {
  return LookupSnapshot(oid, schema_version, UINT64_MAX);
}

std::shared_ptr<const Object> ObjectCache::LookupSnapshot(
    Oid oid, uint64_t schema_version, uint64_t read_ts) {
  if (!enabled()) return nullptr;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(oid);
  if (it == sh.map.end()) {
    misses_.fetch_add(1, kRelaxed);
    return nullptr;
  }
  if (it->second.schema_version != schema_version) {
    // Materialized against an older schema: self-invalidate.
    EraseLocked(sh, it);
    invalidations_.fetch_add(1, kRelaxed);
    misses_.fetch_add(1, kRelaxed);
    return nullptr;
  }
  if (it->second.commit_ts > read_ts) {
    // Too new for this snapshot; the visible version is in the MVCC chain.
    // The entry stays (it is correct for current-time readers).
    misses_.fetch_add(1, kRelaxed);
    return nullptr;
  }
  it->second.ref = true;
  hits_.fetch_add(1, kRelaxed);
  return it->second.obj;
}

void ObjectCache::Insert(Oid oid, const Object& obj, uint64_t schema_version,
                         uint64_t commit_ts) {
  if (!enabled()) return;
  Insert(oid, std::make_shared<const Object>(obj), schema_version, commit_ts);
}

void ObjectCache::Insert(Oid oid, std::shared_ptr<const Object> obj,
                         uint64_t schema_version, uint64_t commit_ts) {
  if (!enabled()) return;
  size_t bytes = ApproxBytes(*obj);
  // An entry that would monopolize its shard is not worth the sweep.
  if (bytes > shard_capacity_.load(std::memory_order_relaxed) / 2) return;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(oid);
  if (it != sh.map.end()) EraseLocked(sh, it);
  EvictForLocked(sh, bytes);
  // New entries go in behind the hand, granting one full sweep of grace.
  auto ring_it = sh.ring.insert(sh.hand, oid);
  Entry e;
  e.obj = std::move(obj);
  e.schema_version = schema_version;
  e.commit_ts = commit_ts;
  e.bytes = bytes;
  e.ring_it = ring_it;
  sh.map.emplace(oid, std::move(e));
  sh.bytes += bytes;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  resident_objects_.fetch_add(1, kRelaxed);
  resident_bytes_.fetch_add(bytes, kRelaxed);
}

void ObjectCache::Invalidate(Oid oid) {
  if (!enabled()) return;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(oid);
  if (it == sh.map.end()) return;
  EraseLocked(sh, it);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ObjectCache::Clear() {
  if (!enabled()) return;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    invalidations_.fetch_add(sh.map.size(), kRelaxed);
    resident_objects_.fetch_sub(sh.map.size(), kRelaxed);
    resident_bytes_.fetch_sub(sh.bytes, kRelaxed);
    sh.map.clear();
    sh.ring.clear();
    sh.hand = sh.ring.end();
    sh.bytes = 0;
  }
}

void ObjectCache::EraseLocked(Shard& sh,
                              std::unordered_map<Oid, Entry>::iterator it) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  if (sh.hand == it->second.ring_it) ++sh.hand;
  sh.ring.erase(it->second.ring_it);
  sh.bytes -= it->second.bytes;
  resident_objects_.fetch_sub(1, kRelaxed);
  resident_bytes_.fetch_sub(it->second.bytes, kRelaxed);
  sh.map.erase(it);
}

void ObjectCache::Resize(size_t capacity_bytes) {
  capacity_bytes_.store(capacity_bytes, std::memory_order_relaxed);
  shard_capacity_.store(capacity_bytes / kShards, std::memory_order_relaxed);
  // Shrinking (or disabling) takes effect immediately: sweep every shard
  // down to its new budget.
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    EvictForLocked(sh, 0);
  }
}

void ObjectCache::EvictForLocked(Shard& sh, size_t need) {
  const size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  while (sh.bytes + need > cap && !sh.ring.empty()) {
    if (sh.hand == sh.ring.end()) sh.hand = sh.ring.begin();
    auto it = sh.map.find(*sh.hand);
    if (it == sh.map.end()) {
      // Should not happen (ring and map are kept in sync); self-heal.
      sh.hand = sh.ring.erase(sh.hand);
      continue;
    }
    if (it->second.ref) {
      it->second.ref = false;
      ++sh.hand;
      continue;
    }
    EraseLocked(sh, it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ObjectCacheStats ObjectCache::stats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  ObjectCacheStats s;
  s.hits = hits_.load(kRelaxed);
  s.misses = misses_.load(kRelaxed);
  s.evictions = evictions_.load(kRelaxed);
  s.invalidations = invalidations_.load(kRelaxed);
  s.resident_objects = resident_objects_.load(kRelaxed);
  s.resident_bytes = resident_bytes_.load(kRelaxed);
  return s;
}

}  // namespace kimdb
