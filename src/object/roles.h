#ifndef KIMDB_OBJECT_ROLES_H_
#define KIMDB_OBJECT_ROLES_H_

#include <vector>

#include "object/object_store.h"

namespace kimdb {

// Reserved system attributes for the role mechanism (extending the block
// in model/object.h).
/// On a player object: set of refs to its role objects.
inline constexpr AttrId kAttrRoles = kSysAttrBase + 16;
/// On a role object: ref to the player it extends.
inline constexpr AttrId kAttrRoleOf = kSysAttrBase + 17;

/// Objects with roles (paper §5.4 "Semantic Modeling", PERN90).
///
/// A role lets an entity *temporarily* carry the state of another class
/// without migrating between classes (which the core model forbids: an
/// object belongs to exactly one class). A Person may acquire an Employee
/// role and later a Pilot role, abandon them independently, and hold
/// several roles at once; the roles are objects of ordinary classes,
/// linked bidirectionally to their player through system attributes.
///
/// This is the layered-architecture approach §5.5 recommends: the core
/// model is untouched; roles are a semantic extension built from objects,
/// references and two reserved attributes. Queries can target role classes
/// directly (role extents are class extents) and navigate to players via
/// the RoleOf link.
class RoleManager {
 public:
  explicit RoleManager(ObjectStore* store) : store_(store) {}

  /// Creates an instance of `role_class` with `attrs` and attaches it to
  /// `player`. A player may hold many roles, but at most one of a given
  /// class (acquire twice = AlreadyExists). Returns the role object's OID.
  Result<Oid> AcquireRole(uint64_t txn, Oid player, ClassId role_class,
                          Object attrs);

  /// Detaches and deletes the player's role of class `role_class`.
  Status AbandonRole(uint64_t txn, Oid player, ClassId role_class);

  /// All role objects currently attached to `player`.
  Result<std::vector<Oid>> RolesOf(Oid player) const;

  /// The player's role of exactly `role_class`; NotFound if absent.
  Result<Oid> RoleAs(Oid player, ClassId role_class) const;
  bool HasRole(Oid player, ClassId role_class) const;

  /// The player of a role object; NotFound if `role` is not a role.
  Result<Oid> PlayerOf(Oid role) const;

 private:
  ObjectStore* store_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_ROLES_H_
