#include "object/object_manager.h"

namespace kimdb {

ResidentObject* ObjectManager::Pin(Oid oid) {
  auto it = table_.find(oid);
  if (it != table_.end()) return it->second.get();
  auto desc = std::make_unique<ResidentObject>();
  desc->oid = oid;
  ResidentObject* raw = desc.get();
  table_[oid] = std::move(desc);
  return raw;
}

Status ObjectManager::Swizzle(ResidentObject* obj) {
  obj->refs.clear();
  for (const auto& [attr, value] : obj->obj.attrs()) {
    if (value.kind() == Value::Kind::kRef) {
      if (!value.as_ref().is_nil()) {
        obj->refs[attr].push_back(Pin(value.as_ref()));
      }
    } else if (value.is_collection()) {
      std::vector<ResidentObject*> targets;
      bool any = false;
      for (const Value& e : value.elements()) {
        if (e.kind() == Value::Kind::kRef && !e.as_ref().is_nil()) {
          targets.push_back(Pin(e.as_ref()));
          any = true;
        }
      }
      if (any) obj->refs[attr] = std::move(targets);
    }
  }
  return Status::OK();
}

Result<ResidentObject*> ObjectManager::Load(Oid oid) {
  ResidentObject* desc = Pin(oid);
  if (desc->loaded) return desc;
  KIMDB_ASSIGN_OR_RETURN(desc->obj, store_->Get(oid));
  desc->loaded = true;
  ++stats_.loads;
  KIMDB_RETURN_IF_ERROR(Swizzle(desc));
  return desc;
}

Result<ResidentObject*> ObjectManager::Follow(ResidentObject* from,
                                              AttrId attr) {
  if (!from->loaded) {
    KIMDB_ASSIGN_OR_RETURN(from, Load(from->oid));
  }
  auto it = from->refs.find(attr);
  if (it == from->refs.end() || it->second.empty()) {
    return Status::NotFound("reference attribute is nil or absent");
  }
  ++stats_.pointer_follows;
  ResidentObject* target = it->second.front();
  if (!target->loaded) {
    KIMDB_RETURN_IF_ERROR(Load(target->oid).status());
  }
  return target;
}

Result<std::vector<ResidentObject*>> ObjectManager::FollowAll(
    ResidentObject* from, AttrId attr) {
  if (!from->loaded) {
    KIMDB_ASSIGN_OR_RETURN(from, Load(from->oid));
  }
  auto it = from->refs.find(attr);
  if (it == from->refs.end()) {
    return std::vector<ResidentObject*>{};
  }
  for (ResidentObject* t : it->second) {
    ++stats_.pointer_follows;
    if (!t->loaded) {
      KIMDB_RETURN_IF_ERROR(Load(t->oid).status());
    }
  }
  return it->second;
}

Status ObjectManager::WriteBack(uint64_t txn, ResidentObject* obj) {
  if (!obj->loaded || !obj->dirty) return Status::OK();
  KIMDB_RETURN_IF_ERROR(store_->Update(txn, obj->obj));
  obj->dirty = false;
  // References may have changed: re-swizzle.
  return Swizzle(obj);
}

Status ObjectManager::WriteBackAll(uint64_t txn) {
  for (auto& [oid, desc] : table_) {
    KIMDB_RETURN_IF_ERROR(WriteBack(txn, desc.get()));
  }
  return Status::OK();
}

void ObjectManager::Clear() {
  table_.clear();
  // Stats survive Clear so benchmarks can measure across generations.
}

}  // namespace kimdb
