#ifndef KIMDB_OBJECT_OBJECT_STORE_H_
#define KIMDB_OBJECT_OBJECT_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "model/object.h"
#include "object/mvcc.h"
#include "object/object_cache.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {

/// Observer of committed-path object mutations. Index maintenance, change
/// notification and the composite-object child map all hang off this.
class ObjectStoreListener {
 public:
  virtual ~ObjectStoreListener() = default;
  virtual void OnInsert(const Object& obj) = 0;
  virtual void OnUpdate(const Object& before, const Object& after) = 0;
  virtual void OnDelete(const Object& before) = 0;
};

/// Builds an Object's attribute map from (name, value) pairs, resolving
/// names against `cls`'s effective schema and type-checking each value.
Result<Object> BuildObject(
    const Catalog& catalog, ClassId cls,
    const std::vector<std::pair<std::string, Value>>& attrs);

/// The persistent object repository: one heap-file extent per class, a
/// logical object directory (OID -> RecordId), and WAL logging of logical
/// before/after images.
///
/// Responsibilities the paper assigns to the storage architecture (§3.2,
/// §4.2): object directory management, per-class extents enabling
/// single-class and class-hierarchy scans, physical clustering hints, and
/// lazy schema evolution on read (missing attributes materialize as their
/// declared defaults; values of dropped attributes are skipped).
///
/// Concurrency (DESIGN.md §12): the directory and heap mutations are
/// guarded by a reader/writer lock -- point reads share it, mutators own
/// it exclusively -- and extent scans snapshot the page list and iterate
/// entirely off-lock, so concurrent scans and parallel-scan workers never
/// serialize on the store. Get() is fronted by a bounded deserialized-
/// object cache (`object_cache()`); a capacity of 0 restores the
/// decode-per-read behavior. Fine-grained isolation stays the lock
/// manager's job (logical locks); the store lock only protects physical
/// structures.
class ObjectStore {
 public:
  /// Default byte budget of the deserialized-object cache.
  static constexpr size_t kDefaultCacheBytes = 4u << 20;  // 4 MiB

  /// Opens the store: creates missing extents and rebuilds the object
  /// directory (and per-class OID serial high-water marks) by scanning.
  /// `wal` may be null for non-durable stores (private databases, tests).
  ///
  /// `attach_to_catalog` selects where extent heads live: the shared store
  /// records them in the catalog (persisted with it); a *private database*
  /// (checkout workspace, §3.3) passes false and keeps a volatile local
  /// map, so several stores can share one catalog without clashing.
  ///
  /// `object_cache_bytes` bounds the deserialized-object cache; 0 disables
  /// it (every Get decodes from the heap, the pre-cache behavior).
  static Result<std::unique_ptr<ObjectStore>> Open(
      BufferPool* bp, Catalog* catalog, Wal* wal,
      bool attach_to_catalog = true,
      size_t object_cache_bytes = kDefaultCacheBytes);

  // --- transactional operations (logged) -----------------------------------

  /// Validates `contents` (attribute ids must be in the class's effective
  /// schema or system attributes; values must satisfy their domains),
  /// assigns an OID and stores the object. `cluster_hint`, if non-nil,
  /// requests placement on/near that object's page (composite clustering).
  Result<Oid> Insert(uint64_t txn, ClassId cls, Object contents,
                     Oid cluster_hint = kNilOid);

  /// Replaces the object's full image (the object is identified by
  /// `obj.oid()`).
  Status Update(uint64_t txn, const Object& obj);

  /// Reads, modifies one attribute, validates and updates.
  Status SetAttr(uint64_t txn, Oid oid, std::string_view attr_name,
                 Value value);

  /// Sets (or, for Null, clears) a reserved system attribute directly by
  /// id. System attributes bypass schema validation; they implement
  /// composites, versions and checkout bookkeeping.
  Status SetAttrSystem(uint64_t txn, Oid oid, AttrId attr, Value value);

  Status Delete(uint64_t txn, Oid oid);

  // --- reads ----------------------------------------------------------------

  bool Exists(Oid oid) const;
  /// Materializes the object against the *current* schema: defaults filled
  /// in for attributes added since the object was written; dropped
  /// attributes elided (system attributes always kept). Served from the
  /// deserialized-object cache when possible.
  Result<Object> Get(Oid oid) const;
  /// As Get; additionally reports whether the read was served from the
  /// object cache (per-operator accounting in EXPLAIN ANALYZE).
  Result<Object> Get(Oid oid, bool* cache_hit) const;
  /// As Get, but hands back a shared reference to the immutable resident
  /// image instead of a copy -- the zero-copy read for traversal-style
  /// consumers (path-expression hops) that only inspect the object. A hit
  /// costs a map lookup plus one refcount bump; the instance stays valid
  /// (and fixed at its lookup-time state) even if the entry is
  /// invalidated or evicted afterwards.
  Result<std::shared_ptr<const Object>> GetShared(Oid oid) const;
  Result<std::shared_ptr<const Object>> GetShared(Oid oid,
                                                  bool* cache_hit) const;
  /// The stored image, no schema adjustment (never cached).
  Result<Object> GetRaw(Oid oid) const;

  // --- snapshot reads (MVCC, DESIGN.md §13) ---------------------------------

  /// Resolves `oid` to the newest version committed at or before `read_ts`
  /// (which must belong to a live Snapshot). Takes no lock-manager locks;
  /// version-chain hits and commit-ts-tagged cache hits bypass even the
  /// shared store lock, so a full-speed writer cannot stall this path.
  /// Returns NotFound when the object is deleted at (or born after) the
  /// snapshot. Falls back to plain GetShared when no MVCC table is
  /// attached.
  Result<std::shared_ptr<const Object>> GetSharedSnapshot(
      Oid oid, uint64_t read_ts, bool* cache_hit) const;
  /// By-value convenience over GetSharedSnapshot.
  Result<Object> GetSnapshot(Oid oid, uint64_t read_ts,
                             bool* cache_hit) const;

  /// Scans the extent of exactly `cls` (single-class scope). The page
  /// list is snapshotted up front and iterated without the store lock, so
  /// concurrent scans proceed in parallel; records inserted after the
  /// snapshot onto new pages are not visited (isolation against concurrent
  /// writers is the lock manager's job).
  Status ForEachInClass(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;
  /// Scans `cls` and all its subclasses (class-hierarchy scope, §3.2).
  Status ForEachInHierarchy(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;

  Result<uint64_t> CountClass(ClassId cls) const;

  /// Page ids of `cls`'s extent in chain order (empty if the extent was
  /// never created). The page list is the unit of scan partitioning.
  Result<std::vector<PageId>> ExtentPages(ClassId cls) const;

  /// Scans the records of `cls` stored on one extent page, with schema
  /// materialization. No store lock is held across user callbacks, so
  /// disjoint partitions can be scanned from several threads concurrently
  /// (ParallelExtentScan). The callback receives a mutable reference to a
  /// freshly decoded Object it may move from -- the decoded image is
  /// per-call scratch, not shared state.
  Status ForEachInClassOnPage(ClassId cls, PageId page,
                              const std::function<Status(Object&)>& fn) const;

  /// Scans partition `partition` of `n_partitions` of `cls`'s extent.
  /// Partitions are contiguous page ranges; they are disjoint and their
  /// union is the whole extent as of the call.
  Status ForEachInClassPartitioned(
      ClassId cls, size_t n_partitions, size_t partition,
      const std::function<Status(const Object&)>& fn) const;

  /// Raw extent scan: stored images with their physical addresses (used by
  /// the consistency checker and physical tooling). No schema
  /// materialization is applied.
  Status ForEachRawInClass(
      ClassId cls,
      const std::function<Status(RecordId, const Object&)>& fn) const;

  /// Copy of the object directory (OID -> record address).
  std::vector<std::pair<Oid, RecordId>> DirectorySnapshot() const;

  /// Physical address of an object (clustering experiments, swizzling).
  Result<RecordId> DirectoryLookup(Oid oid) const;

  // --- raw (unlogged) operations: recovery and rollback ---------------------

  Status ApplyInsert(const Object& obj);
  Status ApplyUpdate(const Object& obj);
  Status ApplyDelete(Oid oid);

  // --- schema evolution support ---------------------------------------------

  /// Eagerly rewrites every instance of `cls` (only) to the current schema
  /// (experiment E6 contrasts this with the default lazy conversion).
  Status RewriteExtent(ClassId cls);

  // --- plumbing ---------------------------------------------------------------

  void AddListener(ObjectStoreListener* listener);
  void RemoveListener(ObjectStoreListener* listener);
  Wal* wal() const { return wal_; }
  Catalog* catalog() const { return catalog_; }
  BufferPool* buffer_pool() const { return bp_; }
  /// Creates the extent for a class added after Open.
  Status EnsureExtent(ClassId cls);

  /// The deserialized-object cache (counters for tests / the obs layer).
  const ObjectCache& object_cache() const { return cache_; }

  /// Retargets the object-cache byte budget at runtime (shell
  /// `.set cache_bytes N`; experiment E8).
  void ResizeObjectCache(size_t bytes) { cache_.Resize(bytes); }

  /// Attaches the MVCC version table (owned by the TxnManager). Mutators
  /// then stage copy-on-write version chains and the snapshot read paths
  /// come alive. Attach before concurrent use; null detaches.
  void AttachMvcc(MvccTable* mvcc) { mvcc_ = mvcc; }
  MvccTable* mvcc() const { return mvcc_; }

  /// Wires the Get() latency histogram (`objectstore.get_ns`); null
  /// detaches. Call before concurrent use.
  void AttachMetrics(obs::Histogram* get_ns) { get_ns_ = get_ns; }

 private:
  /// Reader/writer lock over the directory and extent tables, *re-entrant
  /// for the thread holding it exclusively*: mutators synchronously notify
  /// listeners (index maintenance, composites) which read back -- and
  /// sometimes write back -- through the store on the same thread. A
  /// shared request from the exclusive owner is a no-op, so listener
  /// callbacks never self-deadlock; genuine readers take the shared side
  /// and scale with each other. Public read methods never nest shared
  /// acquisitions (internal *Locked helpers assume the lock is held), so
  /// a writer queued between two shared acquisitions cannot wedge a
  /// reader against itself.
  class StoreMutex {
   public:
    void lock() {
      if (HeldExclusiveByMe()) {
        ++depth_;
        return;
      }
      mu_.lock();
      owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
      depth_ = 1;
    }
    void unlock() {
      if (--depth_ > 0) return;
      owner_.store(std::thread::id(), std::memory_order_relaxed);
      mu_.unlock();
    }
    void lock_shared() {
      if (HeldExclusiveByMe()) return;
      mu_.lock_shared();
    }
    void unlock_shared() {
      if (HeldExclusiveByMe()) return;
      mu_.unlock_shared();
    }

   private:
    bool HeldExclusiveByMe() const {
      return owner_.load(std::memory_order_relaxed) ==
             std::this_thread::get_id();
    }
    std::shared_mutex mu_;
    std::atomic<std::thread::id> owner_{};
    int depth_ = 0;  // touched only by the exclusive owner
  };

  ObjectStore(BufferPool* bp, Catalog* catalog, Wal* wal, bool attach,
              size_t cache_bytes)
      : bp_(bp),
        catalog_(catalog),
        wal_(wal),
        attach_to_catalog_(attach),
        cache_(cache_bytes) {}

  /// Extent-head lookup; caller holds extents_mu_.
  Result<PageId> ExtentHeadOfLocked(ClassId cls) const;

  /// Resolves (lazily opening) the heap file of `cls`. Internally
  /// synchronized by extents_mu_ (a leaf lock); the returned pointer is
  /// node-stable for the store's lifetime.
  Result<HeapFile*> ExtentOf(ClassId cls) const;

  /// Directory lookup; caller holds mu_ (either mode).
  Result<RecordId> DirectoryLookupLocked(Oid oid) const;
  /// Stored-image read; caller holds mu_ (either mode).
  Result<Object> GetRawLocked(Oid oid) const;

  Status ValidateContents(ClassId cls, const Object& contents) const;
  /// Applies schema materialization to a decoded object.
  Status MaterializeInPlace(Object* obj) const;
  Status LogOp(uint64_t txn, WalRecordType type, Oid oid,
               const Object* before, const Object* after);

  BufferPool* bp_;
  Catalog* catalog_;
  Wal* wal_;
  bool attach_to_catalog_;

  /// Guards directory_ and listeners_, and orders heap mutations against
  /// point reads (mutators write heap pages under the exclusive side;
  /// GetRaw reads them under the shared side).
  mutable StoreMutex mu_;
  /// Leaf lock guarding the lazy extent tables (extents_, local extent
  /// heads). Acquired under either side of mu_ or with no lock at all;
  /// never held while acquiring mu_.
  mutable std::mutex extents_mu_;

  // Extent heads for detached (private) stores.
  std::unordered_map<ClassId, PageId> local_extent_heads_;
  mutable std::unordered_map<ClassId, HeapFile> extents_;
  std::unordered_map<Oid, RecordId> directory_;
  std::vector<ObjectStoreListener*> listeners_;

  /// OID -> materialized object. Mutators invalidate before notifying
  /// listeners; readers fill it under the shared lock (see ObjectCache).
  mutable ObjectCache cache_;
  /// Version table for MVCC snapshot reads (null for detached stores:
  /// private databases, standalone tests -- they keep the pure 2PL
  /// behavior). Mutators stage chains under the exclusive lock; snapshot
  /// readers resolve against it without taking mu_.
  MvccTable* mvcc_ = nullptr;
  obs::Histogram* get_ns_ = nullptr;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_OBJECT_STORE_H_
