#ifndef KIMDB_OBJECT_OBJECT_STORE_H_
#define KIMDB_OBJECT_OBJECT_STORE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "model/object.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {

/// Observer of committed-path object mutations. Index maintenance, change
/// notification and the composite-object child map all hang off this.
class ObjectStoreListener {
 public:
  virtual ~ObjectStoreListener() = default;
  virtual void OnInsert(const Object& obj) = 0;
  virtual void OnUpdate(const Object& before, const Object& after) = 0;
  virtual void OnDelete(const Object& before) = 0;
};

/// Builds an Object's attribute map from (name, value) pairs, resolving
/// names against `cls`'s effective schema and type-checking each value.
Result<Object> BuildObject(
    const Catalog& catalog, ClassId cls,
    const std::vector<std::pair<std::string, Value>>& attrs);

/// The persistent object repository: one heap-file extent per class, a
/// logical object directory (OID -> RecordId), and WAL logging of logical
/// before/after images.
///
/// Responsibilities the paper assigns to the storage architecture (§3.2,
/// §4.2): object directory management, per-class extents enabling
/// single-class and class-hierarchy scans, physical clustering hints, and
/// lazy schema evolution on read (missing attributes materialize as their
/// declared defaults; values of dropped attributes are skipped).
class ObjectStore {
 public:
  /// Opens the store: creates missing extents and rebuilds the object
  /// directory (and per-class OID serial high-water marks) by scanning.
  /// `wal` may be null for non-durable stores (private databases, tests).
  ///
  /// `attach_to_catalog` selects where extent heads live: the shared store
  /// records them in the catalog (persisted with it); a *private database*
  /// (checkout workspace, §3.3) passes false and keeps a volatile local
  /// map, so several stores can share one catalog without clashing.
  static Result<std::unique_ptr<ObjectStore>> Open(
      BufferPool* bp, Catalog* catalog, Wal* wal,
      bool attach_to_catalog = true);

  // --- transactional operations (logged) -----------------------------------

  /// Validates `contents` (attribute ids must be in the class's effective
  /// schema or system attributes; values must satisfy their domains),
  /// assigns an OID and stores the object. `cluster_hint`, if non-nil,
  /// requests placement on/near that object's page (composite clustering).
  Result<Oid> Insert(uint64_t txn, ClassId cls, Object contents,
                     Oid cluster_hint = kNilOid);

  /// Replaces the object's full image (the object is identified by
  /// `obj.oid()`).
  Status Update(uint64_t txn, const Object& obj);

  /// Reads, modifies one attribute, validates and updates.
  Status SetAttr(uint64_t txn, Oid oid, std::string_view attr_name,
                 Value value);

  /// Sets (or, for Null, clears) a reserved system attribute directly by
  /// id. System attributes bypass schema validation; they implement
  /// composites, versions and checkout bookkeeping.
  Status SetAttrSystem(uint64_t txn, Oid oid, AttrId attr, Value value);

  Status Delete(uint64_t txn, Oid oid);

  // --- reads ----------------------------------------------------------------

  bool Exists(Oid oid) const;
  /// Materializes the object against the *current* schema: defaults filled
  /// in for attributes added since the object was written; dropped
  /// attributes elided (system attributes always kept).
  Result<Object> Get(Oid oid) const;
  /// The stored image, no schema adjustment.
  Result<Object> GetRaw(Oid oid) const;

  /// Scans the extent of exactly `cls` (single-class scope).
  Status ForEachInClass(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;
  /// Scans `cls` and all its subclasses (class-hierarchy scope, §3.2).
  Status ForEachInHierarchy(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;

  Result<uint64_t> CountClass(ClassId cls) const;

  /// Page ids of `cls`'s extent in chain order (empty if the extent was
  /// never created). The page list is the unit of scan partitioning.
  Result<std::vector<PageId>> ExtentPages(ClassId cls) const;

  /// Scans the records of `cls` stored on one extent page, with schema
  /// materialization. Unlike ForEachInClass this does NOT hold the store
  /// mutex across user callbacks, so disjoint partitions can be scanned
  /// from several threads concurrently (ParallelExtentScan). The callback
  /// receives a mutable reference to a freshly decoded Object it may move
  /// from -- the decoded image is per-call scratch, not shared state.
  Status ForEachInClassOnPage(ClassId cls, PageId page,
                              const std::function<Status(Object&)>& fn) const;

  /// Scans partition `partition` of `n_partitions` of `cls`'s extent.
  /// Partitions are contiguous page ranges; they are disjoint and their
  /// union is the whole extent as of the call.
  Status ForEachInClassPartitioned(
      ClassId cls, size_t n_partitions, size_t partition,
      const std::function<Status(const Object&)>& fn) const;

  /// Raw extent scan: stored images with their physical addresses (used by
  /// the consistency checker and physical tooling). No schema
  /// materialization is applied.
  Status ForEachRawInClass(
      ClassId cls,
      const std::function<Status(RecordId, const Object&)>& fn) const;

  /// Copy of the object directory (OID -> record address).
  std::vector<std::pair<Oid, RecordId>> DirectorySnapshot() const;

  /// Physical address of an object (clustering experiments, swizzling).
  Result<RecordId> DirectoryLookup(Oid oid) const;

  // --- raw (unlogged) operations: recovery and rollback ---------------------

  Status ApplyInsert(const Object& obj);
  Status ApplyUpdate(const Object& obj);
  Status ApplyDelete(Oid oid);

  // --- schema evolution support ---------------------------------------------

  /// Eagerly rewrites every instance of `cls` (only) to the current schema
  /// (experiment E6 contrasts this with the default lazy conversion).
  Status RewriteExtent(ClassId cls);

  // --- plumbing ---------------------------------------------------------------

  void AddListener(ObjectStoreListener* listener);
  void RemoveListener(ObjectStoreListener* listener);
  Wal* wal() const { return wal_; }
  Catalog* catalog() const { return catalog_; }
  BufferPool* buffer_pool() const { return bp_; }
  /// Creates the extent for a class added after Open.
  Status EnsureExtent(ClassId cls);

 private:
  ObjectStore(BufferPool* bp, Catalog* catalog, Wal* wal, bool attach)
      : bp_(bp), catalog_(catalog), wal_(wal), attach_to_catalog_(attach) {}

  Result<PageId> ExtentHeadOf(ClassId cls) const;

  Result<HeapFile*> ExtentOf(ClassId cls) const;
  Status ValidateContents(ClassId cls, const Object& contents) const;
  /// Applies schema materialization to a decoded object.
  Status MaterializeInPlace(Object* obj) const;
  Status LogOp(uint64_t txn, WalRecordType type, Oid oid,
               const Object* before, const Object* after);

  // Serializes store operations. Recursive because mutations synchronously
  // notify listeners (index maintenance, composites) which read back
  // through the store. Fine-grained concurrency is the lock manager's job
  // (logical locks); this mutex only protects physical structures.
  mutable std::recursive_mutex mu_;
  BufferPool* bp_;
  Catalog* catalog_;
  Wal* wal_;
  bool attach_to_catalog_;
  // Extent heads for detached (private) stores.
  std::unordered_map<ClassId, PageId> local_extent_heads_;
  mutable std::unordered_map<ClassId, HeapFile> extents_;
  std::unordered_map<Oid, RecordId> directory_;
  std::vector<ObjectStoreListener*> listeners_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_OBJECT_STORE_H_
