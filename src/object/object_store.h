#ifndef KIMDB_OBJECT_OBJECT_STORE_H_
#define KIMDB_OBJECT_OBJECT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "model/object.h"
#include "object/mvcc.h"
#include "object/object_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {

/// Observer of committed-path object mutations. Index maintenance, change
/// notification and the composite-object child map all hang off this.
class ObjectStoreListener {
 public:
  virtual ~ObjectStoreListener() = default;
  virtual void OnInsert(const Object& obj) = 0;
  virtual void OnUpdate(const Object& before, const Object& after) = 0;
  virtual void OnDelete(const Object& before) = 0;
};

/// Builds an Object's attribute map from (name, value) pairs, resolving
/// names against `cls`'s effective schema and type-checking each value.
Result<Object> BuildObject(
    const Catalog& catalog, ClassId cls,
    const std::vector<std::pair<std::string, Value>>& attrs);

/// The persistent object repository: one heap-file extent per class, a
/// logical object directory (OID -> RecordId), and WAL logging of logical
/// before/after images.
///
/// Responsibilities the paper assigns to the storage architecture (§3.2,
/// §4.2): object directory management, per-class extents enabling
/// single-class and class-hierarchy scans, physical clustering hints, and
/// lazy schema evolution on read (missing attributes materialize as their
/// declared defaults; values of dropped attributes are skipped).
///
/// Concurrency (DESIGN.md §12, §14): writer serialization is *per class*.
/// Each class hashes to one of 64 write latches; a mutator owns its
/// class's latch exclusively for the physical mutation (validate, WAL,
/// heap, directory, version staging, cache invalidation), then DOWNGRADES
/// to shared and notifies listeners -- so index maintenance on class A
/// never blocks writers of class B, and a listener reading back through
/// the store (even another class) can never deadlock against a concurrent
/// writer (exclusive phases only ever take leaf locks and terminate).
/// Point reads share the latch of their object's class; extent scans
/// snapshot the page list and take the class-SHARED latch only for the
/// per-page byte copy (writers rewrite records in place on the buffer
/// frame, so an unlatched decode could tear) -- decode and callbacks run
/// off-latch, so concurrent scans and parallel-scan workers never
/// serialize on the store. The
/// object directory is sharded by OID under its own leaf mutexes. Get()
/// is fronted by a bounded deserialized-object cache (`object_cache()`);
/// a capacity of 0 restores the decode-per-read behavior. Fine-grained
/// isolation stays the lock manager's job (logical locks); the latches
/// only protect physical structures.
class ObjectStore {
 public:
  /// Default byte budget of the deserialized-object cache.
  static constexpr size_t kDefaultCacheBytes = 4u << 20;  // 4 MiB

  /// Opens the store: creates missing extents and rebuilds the object
  /// directory (and per-class OID serial high-water marks) by scanning.
  /// `wal` may be null for non-durable stores (private databases, tests).
  ///
  /// `attach_to_catalog` selects where extent heads live: the shared store
  /// records them in the catalog (persisted with it); a *private database*
  /// (checkout workspace, §3.3) passes false and keeps a volatile local
  /// map, so several stores can share one catalog without clashing.
  ///
  /// `object_cache_bytes` bounds the deserialized-object cache; 0 disables
  /// it (every Get decodes from the heap, the pre-cache behavior).
  static Result<std::unique_ptr<ObjectStore>> Open(
      BufferPool* bp, Catalog* catalog, Wal* wal,
      bool attach_to_catalog = true,
      size_t object_cache_bytes = kDefaultCacheBytes);

  // --- transactional operations (logged) -----------------------------------

  /// Validates `contents` (attribute ids must be in the class's effective
  /// schema or system attributes; values must satisfy their domains),
  /// assigns an OID and stores the object. `cluster_hint`, if non-nil,
  /// requests placement on/near that object's page (composite clustering).
  Result<Oid> Insert(uint64_t txn, ClassId cls, Object contents,
                     Oid cluster_hint = kNilOid);

  /// Replaces the object's full image (the object is identified by
  /// `obj.oid()`).
  Status Update(uint64_t txn, const Object& obj);

  /// Reads, modifies one attribute, validates and updates.
  Status SetAttr(uint64_t txn, Oid oid, std::string_view attr_name,
                 Value value);

  /// Sets (or, for Null, clears) a reserved system attribute directly by
  /// id. System attributes bypass schema validation; they implement
  /// composites, versions and checkout bookkeeping.
  Status SetAttrSystem(uint64_t txn, Oid oid, AttrId attr, Value value);

  Status Delete(uint64_t txn, Oid oid);

  // --- reads ----------------------------------------------------------------

  bool Exists(Oid oid) const;
  /// Materializes the object against the *current* schema: defaults filled
  /// in for attributes added since the object was written; dropped
  /// attributes elided (system attributes always kept). Served from the
  /// deserialized-object cache when possible.
  Result<Object> Get(Oid oid) const;
  /// As Get; additionally reports whether the read was served from the
  /// object cache (per-operator accounting in EXPLAIN ANALYZE).
  Result<Object> Get(Oid oid, bool* cache_hit) const;
  /// As Get, but hands back a shared reference to the immutable resident
  /// image instead of a copy -- the zero-copy read for traversal-style
  /// consumers (path-expression hops) that only inspect the object. A hit
  /// costs a map lookup plus one refcount bump; the instance stays valid
  /// (and fixed at its lookup-time state) even if the entry is
  /// invalidated or evicted afterwards.
  Result<std::shared_ptr<const Object>> GetShared(Oid oid) const;
  Result<std::shared_ptr<const Object>> GetShared(Oid oid,
                                                  bool* cache_hit) const;
  /// The stored image, no schema adjustment (never cached).
  Result<Object> GetRaw(Oid oid) const;

  // --- snapshot reads (MVCC, DESIGN.md §13) ---------------------------------

  /// Resolves `oid` to the newest version committed at or before `read_ts`
  /// (which must belong to a live Snapshot). Takes no lock-manager locks;
  /// version-chain hits and commit-ts-tagged cache hits bypass even the
  /// shared class latch, so a full-speed writer cannot stall this path.
  /// Returns NotFound when the object is deleted at (or born after) the
  /// snapshot. Falls back to plain GetShared when no MVCC table is
  /// attached.
  Result<std::shared_ptr<const Object>> GetSharedSnapshot(
      Oid oid, uint64_t read_ts, bool* cache_hit) const;
  /// By-value convenience over GetSharedSnapshot.
  Result<Object> GetSnapshot(Oid oid, uint64_t read_ts,
                             bool* cache_hit) const;

  /// Scans the extent of exactly `cls` (single-class scope). The page
  /// list is snapshotted up front and iterated without the class latch, so
  /// concurrent scans proceed in parallel; records inserted after the
  /// snapshot onto new pages are not visited (isolation against concurrent
  /// writers is the lock manager's job).
  Status ForEachInClass(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;
  /// Scans `cls` and all its subclasses (class-hierarchy scope, §3.2).
  Status ForEachInHierarchy(
      ClassId cls, const std::function<Status(const Object&)>& fn) const;

  Result<uint64_t> CountClass(ClassId cls) const;

  /// Exact live-object count of `cls`'s extent (this class only, not the
  /// hierarchy), maintained by the object directory on every insert and
  /// delete. O(shards), no I/O -- safe to call per query plan.
  uint64_t LiveCount(ClassId cls) const;

  /// Page ids of `cls`'s extent in chain order (empty if the extent was
  /// never created). The page list is the unit of scan partitioning.
  Result<std::vector<PageId>> ExtentPages(ClassId cls) const;

  /// Scans the records of `cls` stored on one extent page, with schema
  /// materialization. No latch is held across user callbacks, so
  /// disjoint partitions can be scanned from several threads concurrently
  /// (ParallelExtentScan). The callback receives a mutable reference to a
  /// freshly decoded Object it may move from -- the decoded image is
  /// per-call scratch, not shared state.
  Status ForEachInClassOnPage(ClassId cls, PageId page,
                              const std::function<Status(Object&)>& fn) const;

  /// Scans partition `partition` of `n_partitions` of `cls`'s extent.
  /// Partitions are contiguous page ranges; they are disjoint and their
  /// union is the whole extent as of the call.
  Status ForEachInClassPartitioned(
      ClassId cls, size_t n_partitions, size_t partition,
      const std::function<Status(const Object&)>& fn) const;

  /// Raw extent scan: stored images with their physical addresses (used by
  /// the consistency checker and physical tooling). No schema
  /// materialization is applied.
  Status ForEachRawInClass(
      ClassId cls,
      const std::function<Status(RecordId, const Object&)>& fn) const;

  /// Copy of the object directory (OID -> record address).
  std::vector<std::pair<Oid, RecordId>> DirectorySnapshot() const;

  /// Physical address of an object (clustering experiments, swizzling).
  Result<RecordId> DirectoryLookup(Oid oid) const;

  // --- raw (unlogged) operations: recovery and rollback ---------------------

  Status ApplyInsert(const Object& obj);
  Status ApplyUpdate(const Object& obj);
  Status ApplyDelete(Oid oid);

  // --- schema evolution support ---------------------------------------------

  /// Eagerly rewrites every instance of `cls` (only) to the current schema
  /// (experiment E6 contrasts this with the default lazy conversion).
  Status RewriteExtent(ClassId cls);

  // --- plumbing ---------------------------------------------------------------

  void AddListener(ObjectStoreListener* listener);
  void RemoveListener(ObjectStoreListener* listener);
  Wal* wal() const { return wal_; }
  Catalog* catalog() const { return catalog_; }
  BufferPool* buffer_pool() const { return bp_; }
  /// Creates the extent for a class added after Open.
  Status EnsureExtent(ClassId cls);

  /// The deserialized-object cache (counters for tests / the obs layer).
  const ObjectCache& object_cache() const { return cache_; }

  /// Retargets the object-cache byte budget at runtime (shell
  /// `.set cache_bytes N`; experiment E8).
  void ResizeObjectCache(size_t bytes) { cache_.Resize(bytes); }

  /// Attaches the MVCC version table (owned by the TxnManager). Mutators
  /// then stage copy-on-write version chains and the snapshot read paths
  /// come alive. Attach before concurrent use; null detaches.
  void AttachMvcc(MvccTable* mvcc) { mvcc_ = mvcc; }
  MvccTable* mvcc() const { return mvcc_; }

  /// Wires the Get() latency histogram (`objectstore.get_ns`); null
  /// detaches. Call before concurrent use.
  void AttachMetrics(obs::Histogram* get_ns) { get_ns_ = get_ns; }

  /// Wires the flight recorder: contended class-latch acquisitions emit
  /// kLatchWait spans (begin arg = class id, end arg = wait ns). Null
  /// detaches. Call before concurrent use.
  void AttachTrace(obs::FlightRecorder* trace) { trace_ = trace; }

  /// Times a mutator found its class write latch contended
  /// (`objectstore.class_write_waits`).
  uint64_t class_write_waits() const {
    return class_write_waits_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-class reader/writer latch with an exclusive->shared DOWNGRADE.
  /// One mutation follows the protocol
  ///
  ///   lock()            physical mutation: WAL, heap, directory, version
  ///                     staging, cache invalidation (leaf locks only)
  ///   downgrade()       atomically exchange exclusive for shared: the
  ///                     mutated state is published, but no other writer
  ///                     of this class can start yet
  ///   ...notify...      listeners (index maintenance, composites,
  ///                     notifications) run holding only the shared side,
  ///                     so they may read back through the store -- same
  ///                     or other classes -- without blocking writers of
  ///                     other classes
  ///   unlock_shared()   the next writer of this class may proceed
  ///
  /// Per-class notification order is preserved: the next writer's
  /// exclusive acquisition waits for the previous writer's shared release.
  /// Writers are favored over *top-level* readers (a reader arriving
  /// while a writer waits queues behind it), but a reader that already
  /// holds any class latch *of this store* (a listener reading back)
  /// bypasses that fairness gate -- it can only be blocked by an exclusive
  /// *mutation* phase, which always terminates, so the latch graph has no
  /// hold-and-wait cycle. The held-latch count is kept per (thread, store),
  /// so holding a latch in one store grants no bypass in another. Exclusive acquisition is re-entrant for its
  /// owner; lock_shared by the exclusive owner is a no-op (listener
  /// self-reads can never self-deadlock). Listeners must not call store
  /// mutators synchronously (none do).
  class ClassLatch {
   public:
    /// Exclusive acquisition; bumps `wait_counter` (if non-null) when the
    /// latch was contended, and emits a kLatchWait span through `trace`
    /// (if attached and enabled) covering the wait. `cls` tags the span
    /// with the contended class.
    void lock(std::atomic<uint64_t>* wait_counter,
              obs::FlightRecorder* trace = nullptr, uint64_t cls = 0);
    void unlock();
    /// Exclusive -> shared, atomically (depth must be 1).
    void downgrade();
    void lock_shared();
    void unlock_shared();
    /// Tags the latch with its owning store so the per-thread held-latch
    /// count (the nested-reader fairness bypass) is scoped per store, not
    /// process-wide. Set once, before any acquisition.
    void set_owner(const void* owner) { owner_ = owner; }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    int readers_ = 0;
    int writers_waiting_ = 0;
    int writer_depth_ = 0;
    bool writer_held_ = false;
    std::thread::id writer_;
    const void* owner_ = nullptr;
  };

  /// RAII driver of the mutator protocol above: constructs exclusive,
  /// releases whichever mode is held (early error returns drop the
  /// exclusive side without ever publishing to listeners).
  class WriteGuard {
   public:
    WriteGuard(ClassLatch& latch, std::atomic<uint64_t>* wait_counter,
               obs::FlightRecorder* trace = nullptr, uint64_t cls = 0)
        : latch_(latch) {
      latch_.lock(wait_counter, trace, cls);
    }
    ~WriteGuard() {
      if (shared_) {
        latch_.unlock_shared();
      } else {
        latch_.unlock();
      }
    }
    void Downgrade() {
      latch_.downgrade();
      shared_ = true;
    }

   private:
    ClassLatch& latch_;
    bool shared_ = false;
  };

  /// RAII shared acquisition for point readers.
  class ReadGuard {
   public:
    explicit ReadGuard(ClassLatch& latch) : latch_(latch) {
      latch_.lock_shared();
    }
    ~ReadGuard() { latch_.unlock_shared(); }

   private:
    ClassLatch& latch_;
  };

  ObjectStore(BufferPool* bp, Catalog* catalog, Wal* wal, bool attach,
              size_t cache_bytes)
      : bp_(bp),
        catalog_(catalog),
        wal_(wal),
        attach_to_catalog_(attach),
        cache_(cache_bytes) {
    for (ClassLatch& l : latches_) l.set_owner(this);
  }

  /// Extent-head lookup; caller holds extents_mu_.
  Result<PageId> ExtentHeadOfLocked(ClassId cls) const;

  /// Resolves (lazily opening) the heap file of `cls`. Internally
  /// synchronized by extents_mu_ (a leaf lock); the returned pointer is
  /// node-stable for the store's lifetime.
  Result<HeapFile*> ExtentOf(ClassId cls) const;

  /// Directory lookup (internally takes the OID's shard mutex).
  Result<RecordId> DirectoryGet(Oid oid) const;
  void DirectoryPut(Oid oid, RecordId rid);
  void DirectoryErase(Oid oid);

  /// Stored-image read; caller holds the class latch of `oid` (either
  /// mode) so the heap record cannot move underneath the read.
  Result<Object> GetRawHeld(Oid oid) const;

  /// Copy of the listener list (taken at notify time, under
  /// listeners_mu_).
  std::vector<ObjectStoreListener*> ListenersSnapshot() const;

  /// Shared tail of Update/SetAttr/SetAttrSystem: physical update under
  /// `g`'s exclusive latch, then downgrade + notify. `g` must hold the
  /// latch of `obj`'s class exclusively.
  Status UpdateHeld(WriteGuard& g, uint64_t txn, const Object& obj);
  /// Shared body of ApplyInsert/ApplyUpdate (idempotent redo/undo
  /// upsert). `g` as for UpdateHeld.
  Status ApplyUpsertHeld(WriteGuard& g, const Object& obj);

  Status ValidateContents(ClassId cls, const Object& contents) const;
  /// Applies schema materialization to a decoded object.
  Status MaterializeInPlace(Object* obj) const;
  Status LogOp(uint64_t txn, WalRecordType type, Oid oid,
               const Object* before, const Object* after);

  BufferPool* bp_;
  Catalog* catalog_;
  Wal* wal_;
  bool attach_to_catalog_;

  static constexpr size_t kLatchStripes = 64;  // power of two
  static constexpr size_t kDirShards = 16;     // power of two

  ClassLatch& LatchFor(ClassId cls) const {
    return latches_[cls & (kLatchStripes - 1)];
  }

  /// Per-class write latches: writer serialization and writer-vs-point-
  /// reader ordering, striped so distinct classes almost never share one.
  mutable ClassLatch latches_[kLatchStripes];

  /// Leaf lock guarding the lazy extent tables (extents_, local extent
  /// heads). Acquired under any latch or with no latch at all; never held
  /// while acquiring a latch.
  mutable std::mutex extents_mu_;

  // Extent heads for detached (private) stores.
  std::unordered_map<ClassId, PageId> local_extent_heads_;
  mutable std::unordered_map<ClassId, HeapFile> extents_;

  /// Object directory, sharded by OID hash under leaf mutexes so writers
  /// of distinct classes never contend on one map. Mutators touch it
  /// under their class latch; Exists/DirectoryLookup need only the shard
  /// mutex (they return a point-in-time fact either way).
  struct DirShard {
    mutable std::mutex mu;
    std::unordered_map<Oid, RecordId> map;
    /// Live objects per class in this shard (OIDs embed the class, so the
    /// directory is the one choke point every mutation path crosses --
    /// Insert, Delete, recovery Apply*, Open's rebuild, RewriteExtent).
    std::unordered_map<ClassId, uint64_t> class_counts;
  };
  DirShard& DirShardFor(Oid oid) const {
    return dir_shards_[std::hash<Oid>{}(oid) & (kDirShards - 1)];
  }
  mutable DirShard dir_shards_[kDirShards];

  /// Leaf lock over the listener list (registration is rare; notify
  /// copies the list and runs callbacks outside it).
  mutable std::mutex listeners_mu_;
  std::vector<ObjectStoreListener*> listeners_;

  /// OID -> materialized object. Mutators invalidate before downgrading;
  /// readers fill it under their class-shared latch (see ObjectCache).
  mutable ObjectCache cache_;
  /// Version table for MVCC snapshot reads (null for detached stores:
  /// private databases, standalone tests -- they keep the pure 2PL
  /// behavior). Mutators stage chains under their class's exclusive
  /// latch; snapshot readers resolve against it without any latch.
  MvccTable* mvcc_ = nullptr;
  obs::Histogram* get_ns_ = nullptr;
  obs::FlightRecorder* trace_ = nullptr;
  /// Contended class-latch acquisitions (`objectstore.class_write_waits`).
  mutable std::atomic<uint64_t> class_write_waits_{0};
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_OBJECT_STORE_H_
