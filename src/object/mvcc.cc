#include "object/mvcc.h"

#include <algorithm>

namespace kimdb {

void Snapshot::Release() {
  if (table_ == nullptr) return;
  MvccTable* t = table_;
  table_ = nullptr;
  t->ReleaseSnapshot(read_ts_);
  read_ts_ = 0;
}

void MvccTable::Publish(uint64_t ts) {
  uint64_t cur = visible_ts_.load(std::memory_order_relaxed);
  while (cur < ts && !visible_ts_.compare_exchange_weak(
                         cur, ts, std::memory_order_release,
                         std::memory_order_relaxed)) {
  }
}

void MvccTable::FinishCommit(uint64_t ts) {
  uint64_t frontier = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    publish_done_.insert(ts);
    // Advance the dense frontier over every contiguously finished ts.
    auto it = publish_done_.begin();
    while (it != publish_done_.end() && *it == publish_frontier_ + 1) {
      ++publish_frontier_;
      it = publish_done_.erase(it);
    }
    frontier = publish_frontier_;
  }
  Publish(frontier);
}

void MvccTable::RestoreClock(uint64_t max_commit_ts) {
  uint64_t next = next_ts_.load(std::memory_order_relaxed);
  if (next <= max_commit_ts) {
    next_ts_.store(max_commit_ts + 1, std::memory_order_relaxed);
  }
  {
    // Jump the dense frontier: recovery replayed everything <= max_commit_ts
    // and no concurrent committers exist at restore time.
    std::lock_guard<std::mutex> lock(publish_mu_);
    if (publish_frontier_ < max_commit_ts) publish_frontier_ = max_commit_ts;
    publish_done_.erase(publish_done_.begin(),
                        publish_done_.upper_bound(publish_frontier_));
  }
  Publish(max_commit_ts);
}

Snapshot MvccTable::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  uint64_t ts = visible_ts();
  live_.insert(ts);
  snapshots_acquired_.fetch_add(1, std::memory_order_relaxed);
  return Snapshot(this, ts);
}

void MvccTable::ReleaseSnapshot(uint64_t read_ts) {
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = live_.find(read_ts);
    if (it != live_.end()) live_.erase(it);
  }
  Prune();
}

uint64_t MvccTable::Watermark() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  uint64_t wm = visible_ts();
  if (!live_.empty()) wm = std::min(wm, *live_.begin());
  return wm;
}

namespace {

/// Inserts {ts, image} at its sorted position in a newest-first version
/// list. Commits finish off the commit clock now, so a larger timestamp
/// can reach a chain before a smaller one (e.g. a CommitDirect under
/// commit_mu() racing a transactional Promote that already left it);
/// unconditional front-insertion would break the descending order that
/// Resolve/NewestCommittedTs/CacheFillTs scans rely on.
template <typename Version>
void InsertSorted(std::vector<Version>& versions, uint64_t ts,
                  std::shared_ptr<const Object> image) {
  auto pos = std::find_if(versions.begin(), versions.end(),
                          [ts](const Version& v) { return v.ts < ts; });
  versions.insert(pos, Version{ts, std::move(image)});
}

}  // namespace

void MvccTable::StageWrite(uint64_t txn, Oid oid,
                           std::shared_ptr<const Object> committed_base,
                           std::shared_ptr<const Object> image) {
  bool track = false;
  {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [it, created] = sh.chains.try_emplace(oid);
    Chain& c = it->second;
    if (created) {
      // Base anchor: the image committed before this writer touched the
      // object (ts 0 => visible to every snapshot; correctness argument in
      // DESIGN.md §13 -- any history older than the youngest live snapshot
      // has already been pruned away, so ts 0 never over-exposes).
      c.versions.push_back(Version{0, std::move(committed_base)});
      class_chains_[oid.class_id() & (kClassSlots - 1)].fetch_add(
          1, std::memory_order_relaxed);
      total_chains_.fetch_add(1, std::memory_order_relaxed);
      total_entries_.fetch_add(1, std::memory_order_relaxed);
    }
    track = !c.has_pending || c.pending_txn != txn;
    c.has_pending = true;
    c.pending_txn = txn;
    c.pending_image = std::move(image);
  }
  if (track) {
    std::lock_guard<std::mutex> lock(ws_mu_);
    write_sets_[txn].push_back(oid);
  }
}

bool MvccTable::HasWrites(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(ws_mu_);
  auto it = write_sets_.find(txn);
  return it != write_sets_.end() && !it->second.empty();
}

std::vector<Oid> MvccTable::Promote(uint64_t txn, uint64_t commit_ts) {
  std::vector<Oid> oids;
  {
    std::lock_guard<std::mutex> lock(ws_mu_);
    auto it = write_sets_.find(txn);
    if (it == write_sets_.end()) return oids;
    oids = std::move(it->second);
    write_sets_.erase(it);
  }
  for (Oid oid : oids) {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.chains.find(oid);
    if (it == sh.chains.end()) continue;
    Chain& c = it->second;
    if (!c.has_pending || c.pending_txn != txn) continue;
    InsertSorted(c.versions, commit_ts, std::move(c.pending_image));
    c.has_pending = false;
    c.pending_txn = 0;
    c.pending_image = nullptr;
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    versions_installed_.fetch_add(1, std::memory_order_relaxed);
  }
  return oids;
}

void MvccTable::Demote(uint64_t txn, uint64_t commit_ts,
                       const std::vector<Oid>& oids) {
  std::vector<Oid> restaged;
  restaged.reserve(oids.size());
  for (Oid oid : oids) {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.chains.find(oid);
    if (it == sh.chains.end()) continue;
    Chain& c = it->second;
    auto pos = std::find_if(
        c.versions.begin(), c.versions.end(),
        [commit_ts](const Version& v) { return v.ts == commit_ts; });
    if (pos == c.versions.end()) continue;
    // The frontier has not passed commit_ts yet (FinishCommit runs after
    // us), so no snapshot ever resolved this version: removing it cannot
    // change what any reader already saw. The txn still holds its X lock,
    // so the pending slot is necessarily free.
    if (!c.has_pending) {
      c.has_pending = true;
      c.pending_txn = txn;
      c.pending_image = std::move(pos->image);
      restaged.push_back(oid);
    }
    c.versions.erase(pos);
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (restaged.empty()) return;
  std::lock_guard<std::mutex> lock(ws_mu_);
  auto& ws = write_sets_[txn];
  ws.insert(ws.end(), restaged.begin(), restaged.end());
}

void MvccTable::CommitDirect(Oid oid,
                             std::shared_ptr<const Object> committed_base,
                             std::shared_ptr<const Object> image) {
  // Serialize with transactional commits so the allocated timestamp keeps
  // the promote-before-larger-publish invariant, and with snapshot
  // acquisition so the liveness check linearizes: a snapshot registered
  // after the check reads the heap image this write just produced, which
  // is exactly the committed state at its read_ts.
  std::lock_guard<std::mutex> clk(commit_mu_);
  bool need_version;
  {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    need_version = sh.chains.count(oid) > 0;
  }
  if (!need_version) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    need_version = !live_.empty();
  }
  if (!need_version) return;  // heap alone serves every possible reader

  uint64_t ts = AllocateCommitTs();
  {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [it, created] = sh.chains.try_emplace(oid);
    Chain& c = it->second;
    if (created) {
      c.versions.push_back(Version{0, std::move(committed_base)});
      class_chains_[oid.class_id() & (kClassSlots - 1)].fetch_add(
          1, std::memory_order_relaxed);
      total_chains_.fetch_add(1, std::memory_order_relaxed);
      total_entries_.fetch_add(1, std::memory_order_relaxed);
    }
    InsertSorted(c.versions, ts, std::move(image));
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    versions_installed_.fetch_add(1, std::memory_order_relaxed);
  }
  // The commit record for a direct write is its op record (already in the
  // WAL); no kCommit is stamped, so the recovered clock simply restarts
  // from the durable transactional frontier -- correct, because chains are
  // volatile and rebuilt empty. FinishCommit (not Publish) because
  // transactional committers may have allocated smaller timestamps that
  // have not finished promoting yet.
  FinishCommit(ts);
  Prune();
}

void MvccTable::Discard(uint64_t txn) {
  std::vector<Oid> oids;
  {
    std::lock_guard<std::mutex> lock(ws_mu_);
    auto it = write_sets_.find(txn);
    if (it == write_sets_.end()) return;
    oids = std::move(it->second);
    write_sets_.erase(it);
  }
  for (Oid oid : oids) {
    Shard& sh = ShardFor(oid);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.chains.find(oid);
    if (it == sh.chains.end()) continue;
    Chain& c = it->second;
    if (!c.has_pending || c.pending_txn != txn) continue;
    c.has_pending = false;
    c.pending_txn = 0;
    c.pending_image = nullptr;
  }
  Prune();
}

MvccLookup MvccTable::Resolve(Oid oid, uint64_t read_ts,
                              std::shared_ptr<const Object>* image) const {
  if (!MayHaveVersions(oid.class_id())) return MvccLookup::kNoChain;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.chains.find(oid);
  if (it == sh.chains.end()) return MvccLookup::kNoChain;
  for (const Version& v : it->second.versions) {
    if (v.ts <= read_ts) {
      if (v.image == nullptr) return MvccLookup::kInvisible;
      *image = v.image;
      return MvccLookup::kImage;
    }
  }
  return MvccLookup::kInvisible;
}

bool MvccTable::PendingByTxn(uint64_t txn, Oid oid,
                             std::shared_ptr<const Object>* image) const {
  if (!MayHaveVersions(oid.class_id())) return false;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.chains.find(oid);
  if (it == sh.chains.end()) return false;
  const Chain& c = it->second;
  if (!c.has_pending || c.pending_txn != txn) return false;
  *image = c.pending_image;
  return true;
}

uint64_t MvccTable::NewestCommittedTs(Oid oid) const {
  if (!MayHaveVersions(oid.class_id())) return 0;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.chains.find(oid);
  if (it == sh.chains.end()) return 0;
  const Chain& c = it->second;
  return c.versions.empty() ? 0 : c.versions.front().ts;
}

bool MvccTable::CacheFillTs(Oid oid, uint64_t* ts) const {
  *ts = 0;
  if (!MayHaveVersions(oid.class_id())) return true;
  Shard& sh = ShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.chains.find(oid);
  if (it == sh.chains.end()) return true;
  const Chain& c = it->second;
  if (c.has_pending) return false;
  if (!c.versions.empty()) *ts = c.versions.front().ts;
  return true;
}

std::vector<std::pair<Oid, std::shared_ptr<const Object>>>
MvccTable::CollectVisible(ClassId cls, uint64_t read_ts) const {
  std::vector<std::pair<Oid, std::shared_ptr<const Object>>> out;
  if (!MayHaveVersions(cls)) return out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [oid, chain] : sh.chains) {
      if (oid.class_id() != cls) continue;
      for (const Version& v : chain.versions) {
        if (v.ts <= read_ts) {
          if (v.image != nullptr) out.emplace_back(oid, v.image);
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void MvccTable::Prune() {
  if (total_chains_.load(std::memory_order_relaxed) == 0) return;
  const uint64_t wm = Watermark();
  for (size_t i = 0; i < kShards; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto it = sh.chains.begin(); it != sh.chains.end();) {
      Chain& c = it->second;
      // Keep the newest version <= wm plus everything newer; drop the rest.
      size_t keep = c.versions.size();
      for (size_t k = 0; k < c.versions.size(); ++k) {
        if (c.versions[k].ts <= wm) {
          keep = k + 1;
          break;
        }
      }
      if (keep < c.versions.size()) {
        size_t dropped = c.versions.size() - keep;
        c.versions.resize(keep);
        total_entries_.fetch_sub(dropped, std::memory_order_relaxed);
        versions_pruned_.fetch_add(dropped, std::memory_order_relaxed);
      }
      // The chain is redundant once every live and future snapshot would
      // read the same image straight from the heap: no writer in flight
      // and the single surviving version is at or below the watermark.
      if (!c.has_pending && c.versions.size() == 1 &&
          c.versions.front().ts <= wm) {
        class_chains_[it->first.class_id() & (kClassSlots - 1)].fetch_sub(
            1, std::memory_order_relaxed);
        total_chains_.fetch_sub(1, std::memory_order_relaxed);
        total_entries_.fetch_sub(1, std::memory_order_relaxed);
        versions_pruned_.fetch_add(1, std::memory_order_relaxed);
        it = sh.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
}

MvccStats MvccTable::stats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  MvccStats s;
  s.snapshots_acquired = snapshots_acquired_.load(kRelaxed);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    s.snapshots_live = live_.size();
  }
  s.commit_ts = next_ts_.load(kRelaxed) - 1;
  s.visible_ts = visible_ts_.load(std::memory_order_acquire);
  s.write_conflicts = write_conflicts_.load(kRelaxed);
  s.versions_installed = versions_installed_.load(kRelaxed);
  s.versions_pruned = versions_pruned_.load(kRelaxed);
  s.versions_chains = total_chains_.load(kRelaxed);
  s.versions_entries = total_entries_.load(kRelaxed);
  return s;
}

}  // namespace kimdb
