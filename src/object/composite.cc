#include "object/composite.h"

#include <algorithm>

namespace kimdb {

Result<std::unique_ptr<CompositeManager>> CompositeManager::Attach(
    ObjectStore* store) {
  auto mgr = std::unique_ptr<CompositeManager>(new CompositeManager(store));
  // Build the inverse map from existing part-of links.
  for (ClassId cls : store->catalog()->AllClasses()) {
    KIMDB_RETURN_IF_ERROR(store->ForEachInClass(cls, [&](const Object& obj) {
      const Value& p = obj.Get(kAttrPartOf);
      if (p.kind() == Value::Kind::kRef && !p.as_ref().is_nil()) {
        mgr->Link(obj.oid(), p.as_ref());
      }
      return Status::OK();
    }));
  }
  store->AddListener(mgr.get());
  return mgr;
}

CompositeManager::~CompositeManager() { store_->RemoveListener(this); }

void CompositeManager::Link(Oid child, Oid parent) {
  std::lock_guard<std::mutex> lock(children_mu_);
  children_[parent].push_back(child);
}

void CompositeManager::Unlink(Oid child, Oid parent) {
  std::lock_guard<std::mutex> lock(children_mu_);
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), child), v.end());
  if (v.empty()) children_.erase(it);
}

Oid CompositeManager::ParentOf(Oid oid) const {
  Result<Object> obj = store_->GetRaw(oid);
  if (!obj.ok()) return kNilOid;
  const Value& p = obj->Get(kAttrPartOf);
  if (p.kind() != Value::Kind::kRef) return kNilOid;
  return p.as_ref();
}

std::vector<Oid> CompositeManager::ChildrenOf(Oid oid) const {
  std::lock_guard<std::mutex> lock(children_mu_);
  auto it = children_.find(oid);
  return it == children_.end() ? std::vector<Oid>{} : it->second;
}

Status CompositeManager::AttachChild(uint64_t txn, Oid child, Oid parent) {
  if (child == parent) {
    return Status::InvalidArgument("object cannot be part of itself");
  }
  if (!store_->Exists(child) || !store_->Exists(parent)) {
    return Status::NotFound("child or parent does not exist");
  }
  if (!ParentOf(child).is_nil()) {
    return Status::FailedPrecondition(
        "component already belongs to a composite (exclusive ownership)");
  }
  // Cycle check: walk up from `parent`; if we reach `child` the link would
  // close a part-of cycle.
  Oid cur = parent;
  while (!cur.is_nil()) {
    if (cur == child) {
      return Status::InvalidArgument("part-of link would create a cycle");
    }
    cur = ParentOf(cur);
  }
  return store_->SetAttrSystem(txn, child, kAttrPartOf, Value::Ref(parent));
}

Status CompositeManager::DetachChild(uint64_t txn, Oid child) {
  Oid parent = ParentOf(child);
  if (parent.is_nil()) {
    return Status::FailedPrecondition("object is not a component");
  }
  return store_->SetAttrSystem(txn, child, kAttrPartOf, Value::Null());
}

Status CompositeManager::ForEachComponent(
    Oid root, const std::function<Status(Oid)>& fn) const {
  KIMDB_RETURN_IF_ERROR(fn(root));
  for (Oid c : ChildrenOf(root)) {
    KIMDB_RETURN_IF_ERROR(ForEachComponent(c, fn));
  }
  return Status::OK();
}

Result<uint64_t> CompositeManager::ComponentCount(Oid root) const {
  uint64_t n = 0;
  KIMDB_RETURN_IF_ERROR(ForEachComponent(root, [&](Oid) {
    ++n;
    return Status::OK();
  }));
  return n;
}

Status CompositeManager::DeleteComposite(uint64_t txn, Oid root) {
  // Existential dependency: children are deleted before their parent.
  std::vector<Oid> postorder;
  Status st = ForEachComponent(root, [&](Oid oid) {
    postorder.push_back(oid);
    return Status::OK();
  });
  KIMDB_RETURN_IF_ERROR(st);
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    KIMDB_RETURN_IF_ERROR(store_->Delete(txn, *it));
  }
  return Status::OK();
}

Result<Oid> CompositeManager::DeepCopy(uint64_t txn, Oid root) {
  // Pass 1: copy every component top-down (so children cluster near their
  // new parents), remembering the old->new OID mapping.
  std::unordered_map<Oid, Oid> remap;
  struct Item {
    Oid old_oid;
    Oid new_parent;
  };
  std::vector<Item> stack{{root, kNilOid}};
  Oid new_root = kNilOid;
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(item.old_oid));
    Object copy = obj;
    copy.set_oid(kNilOid);
    copy.Unset(kAttrPartOf);
    if (!item.new_parent.is_nil()) {
      copy.Set(kAttrPartOf, Value::Ref(item.new_parent));
    }
    KIMDB_ASSIGN_OR_RETURN(
        Oid new_oid,
        store_->Insert(txn, obj.class_id(), std::move(copy),
                       item.new_parent));
    remap[item.old_oid] = new_oid;
    if (item.new_parent.is_nil()) new_root = new_oid;
    for (Oid c : ChildrenOf(item.old_oid)) {
      stack.push_back({c, new_oid});
    }
  }
  // Pass 2: remap composite-internal references onto the copies.
  for (const auto& [old_oid, new_oid] : remap) {
    KIMDB_ASSIGN_OR_RETURN(Object obj, store_->GetRaw(new_oid));
    bool changed = false;
    Object updated = obj;
    for (const auto& [attr, value] : obj.attrs()) {
      if (attr == kAttrPartOf) continue;
      if (value.kind() == Value::Kind::kRef) {
        auto it = remap.find(value.as_ref());
        if (it != remap.end()) {
          updated.Set(attr, Value::Ref(it->second));
          changed = true;
        }
      } else if (value.is_collection()) {
        std::vector<Value> elems = value.elements();
        bool coll_changed = false;
        for (Value& e : elems) {
          if (e.kind() == Value::Kind::kRef) {
            auto it = remap.find(e.as_ref());
            if (it != remap.end()) {
              e = Value::Ref(it->second);
              coll_changed = true;
            }
          }
        }
        if (coll_changed) {
          updated.Set(attr, value.kind() == Value::Kind::kSet
                                ? Value::Set(std::move(elems))
                                : Value::List(std::move(elems)));
          changed = true;
        }
      }
    }
    if (changed) {
      KIMDB_RETURN_IF_ERROR(store_->Update(txn, updated));
    }
  }
  return new_root;
}

void CompositeManager::OnInsert(const Object& obj) {
  const Value& p = obj.Get(kAttrPartOf);
  if (p.kind() == Value::Kind::kRef && !p.as_ref().is_nil()) {
    Link(obj.oid(), p.as_ref());
  }
}

void CompositeManager::OnUpdate(const Object& before, const Object& after) {
  const Value& pb = before.Get(kAttrPartOf);
  const Value& pa = after.Get(kAttrPartOf);
  Oid old_parent =
      pb.kind() == Value::Kind::kRef ? pb.as_ref() : kNilOid;
  Oid new_parent =
      pa.kind() == Value::Kind::kRef ? pa.as_ref() : kNilOid;
  if (old_parent == new_parent) return;
  if (!old_parent.is_nil()) Unlink(before.oid(), old_parent);
  if (!new_parent.is_nil()) Link(after.oid(), new_parent);
}

void CompositeManager::OnDelete(const Object& before) {
  const Value& p = before.Get(kAttrPartOf);
  if (p.kind() == Value::Kind::kRef && !p.as_ref().is_nil()) {
    Unlink(before.oid(), p.as_ref());
  }
  std::lock_guard<std::mutex> lock(children_mu_);
  children_.erase(before.oid());
}

}  // namespace kimdb
