#ifndef KIMDB_OBJECT_RECOVERY_H_
#define KIMDB_OBJECT_RECOVERY_H_

#include "object/object_store.h"
#include "storage/wal.h"
#include "util/result.h"

namespace kimdb {

struct RecoveryStats {
  uint64_t committed_txns = 0;
  uint64_t losing_txns = 0;  // uncommitted or explicitly aborted
  uint64_t redone = 0;
  uint64_t undone = 0;
};

/// Crash recovery over the logical (object-level) WAL.
///
/// The engine uses a steal/no-force page policy: heap pages reach disk only
/// via buffer-pool eviction or checkpoints, so after a crash the extents
/// hold an arbitrary mix of logged operations' effects. Because log records
/// carry *full before/after images keyed by OID*, replay is idempotent:
///
///   1. analysis: classify each transaction as committed (a kCommit record
///      exists) or losing (no commit, or an explicit kAbort);
///   2. redo: apply every committed operation in LSN order
///      (insert/update -> ApplyInsert/ApplyUpdate with the after image;
///      delete -> ApplyDelete);
///   3. undo: apply losing operations' inverses in reverse LSN order
///      (insert -> delete; update/delete -> restore the before image).
///
/// Run Recover() after ObjectStore::Open and *before* registering listeners
/// (indexes are rebuilt afterwards from the recovered state).
class RecoveryManager {
 public:
  static Result<RecoveryStats> Recover(ObjectStore* store, Wal* wal);
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_RECOVERY_H_
