#ifndef KIMDB_OBJECT_RECOVERY_H_
#define KIMDB_OBJECT_RECOVERY_H_

#include "object/object_store.h"
#include "storage/wal.h"
#include "util/result.h"

namespace kimdb {

struct RecoveryStats {
  uint64_t committed_txns = 0;
  uint64_t aborted_txns = 0;  // explicit kAbort record in the log
  uint64_t losing_txns = 0;   // aborted + in-flight at the crash
  uint64_t redone = 0;
  uint64_t undone = 0;
  /// Largest commit timestamp found in a durable kCommit record (its key
  /// field); restores the MVCC commit clock so post-recovery snapshots see
  /// exactly the durable commits. 0 when the log has no stamped commits.
  uint64_t max_commit_ts = 0;
  // Phase wall-clock timings (includes the log read in analysis_ns).
  uint64_t analysis_ns = 0;
  uint64_t redo_ns = 0;
  uint64_t undo_ns = 0;
};

/// Crash recovery over the logical (object-level) WAL.
///
/// The engine uses a steal/no-force page policy: heap pages reach disk only
/// via buffer-pool eviction or checkpoints, so after a crash the extents
/// hold an arbitrary mix of logged operations' effects. Because log records
/// carry *full before/after images keyed by OID*, replay is idempotent
/// (re-inserting an existing OID degrades to an update; deleting a missing
/// OID is a no-op):
///
///   1. analysis: classify each transaction as committed (kCommit),
///      aborted (kAbort), or in-flight (neither);
///   2. history replay, one forward pass in LSN order:
///        - committed operations are redone from their after images;
///        - an aborted transaction's inverses are applied *at its kAbort
///          record's position*, because its rollback ran through the
///          unlogged apply path before the crash and may or may not have
///          reached disk. Replaying the rollback where the abort sits in
///          the log keeps it ordered before later committed writes to the
///          same objects (2PL releases the aborter's locks only after the
///          kAbort record is appended), so it can never clobber them;
///        - in-flight operations are skipped;
///   3. undo: in-flight transactions' inverses in reverse LSN order
///      (insert -> delete; update/delete -> restore the before image).
///      Their X locks were still held at the crash, so nothing committed
///      after their images and end-of-log undo is safe.
///
/// Running Recover twice is a no-op: every step is expressed as an
/// idempotent full-image apply and the pass order is deterministic.
///
/// Run Recover() after ObjectStore::Open and *before* registering listeners
/// (indexes are rebuilt afterwards from the recovered state).
class RecoveryManager {
 public:
  static Result<RecoveryStats> Recover(ObjectStore* store, Wal* wal);
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_RECOVERY_H_
