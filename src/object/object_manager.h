#ifndef KIMDB_OBJECT_OBJECT_MANAGER_H_
#define KIMDB_OBJECT_OBJECT_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "object/object_store.h"

namespace kimdb {

/// An in-memory descriptor for a (possibly not-yet-loaded) object in the
/// workspace, in the style of LOOM "leaves" / ORION resident objects
/// (paper §3.3): when an object is loaded, the OIDs embedded in it are
/// converted into direct pointers to descriptors, so traversals do not go
/// through the object directory again.
struct ResidentObject {
  Oid oid;
  bool loaded = false;
  Object obj;  // valid iff loaded
  bool dirty = false;
  /// Swizzled reference attributes: attr id -> descriptor pointers (one
  /// entry for single-valued refs; element order preserved for sets/lists).
  std::unordered_map<AttrId, std::vector<ResidentObject*>> refs;
};

struct ObjectManagerStats {
  uint64_t loads = 0;           // objects materialized from the store
  uint64_t pointer_follows = 0; // traversals served by a swizzled pointer
};

/// Memory-resident object management (paper §3.3): a workspace that caches
/// objects, swizzles inter-object references into memory pointers, and
/// writes modified objects back through the transactional store. This is
/// what the paper argues CAx applications need ("a much better solution is
/// to store logical object identifiers within the objects ... and convert
/// them to memory pointers"); experiment E4 quantifies it.
class ObjectManager {
 public:
  explicit ObjectManager(ObjectStore* store) : store_(store) {}

  ObjectManager(const ObjectManager&) = delete;
  ObjectManager& operator=(const ObjectManager&) = delete;

  /// Returns the descriptor for `oid`, creating an unloaded one if needed.
  ResidentObject* Pin(Oid oid);

  /// Ensures the object is materialized in the workspace with its
  /// references swizzled; loads it from the store on first touch.
  Result<ResidentObject*> Load(Oid oid);

  /// Follows a single-valued reference attribute through its swizzled
  /// pointer, loading the target lazily. NotFound if the attribute is nil.
  Result<ResidentObject*> Follow(ResidentObject* from, AttrId attr);

  /// Follows a set-valued reference attribute; targets are loaded lazily.
  Result<std::vector<ResidentObject*>> FollowAll(ResidentObject* from,
                                                 AttrId attr);

  /// Marks the resident copy modified; WriteBack persists it.
  void MarkDirty(ResidentObject* obj) { obj->dirty = true; }

  /// Writes one dirty object back through the store (logged under `txn`).
  Status WriteBack(uint64_t txn, ResidentObject* obj);

  /// Writes back every dirty resident object.
  Status WriteBackAll(uint64_t txn);

  /// Empties the workspace (descriptor pointers become invalid).
  void Clear();

  size_t resident_count() const { return table_.size(); }
  const ObjectManagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ObjectManagerStats{}; }

 private:
  Status Swizzle(ResidentObject* obj);

  ObjectStore* store_;
  std::unordered_map<Oid, std::unique_ptr<ResidentObject>> table_;
  ObjectManagerStats stats_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_OBJECT_MANAGER_H_
