#include "object/object_store.h"

#include <algorithm>

namespace kimdb {

namespace {
/// Class latches (shared or exclusive) held by this thread, counted per
/// owning store. Non-zero for a store means we are inside one of its
/// calls already -- typically a listener reading back during a notify
/// phase -- so nested shared acquisitions of that store's latches bypass
/// the writer-fairness gate (see ClassLatch::lock_shared): they can only
/// be blocked by an exclusive mutation phase, which always terminates,
/// never by a writer that is itself waiting on us. Scoping the count per
/// store keeps the bypass from leaking across stores (a listener of store
/// A reading store B is a top-level reader of B and must queue behind B's
/// writers like anyone else).
struct TlsLatchCounts {
  static constexpr size_t kSlots = 8;
  const void* owner[kSlots] = {};
  int count[kSlots] = {};
  /// Shared by stores beyond kSlots concurrently-latched-by-this-thread
  /// distinct stores -- for them the bypass degrades to the old
  /// process-wide behavior (weaker fairness, never a deadlock).
  int overflow = 0;
  int& For(const void* o) {
    for (size_t i = 0; i < kSlots; ++i) {
      if (owner[i] == o) return count[i];
      if (owner[i] == nullptr) {
        owner[i] = o;  // slot stays claimed for the thread's lifetime
        return count[i];
      }
    }
    return overflow;
  }
};
thread_local TlsLatchCounts tls_class_latches;
}  // namespace

void ObjectStore::ClassLatch::lock(std::atomic<uint64_t>* wait_counter,
                                   obs::FlightRecorder* trace,
                                   uint64_t cls) {
  std::unique_lock<std::mutex> lk(mu_);
  if (writer_held_ && writer_ == std::this_thread::get_id()) {
    ++writer_depth_;
    return;
  }
  ++writers_waiting_;
  if (readers_ > 0 || writer_held_) {
    if (wait_counter != nullptr) {
      wait_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (trace != nullptr && trace->enabled()) {
      uint64_t t0 = trace->NowNs();
      trace->Record(obs::TraceStage::kLatchWait, obs::TraceEventKind::kBegin,
                    0, cls);
      cv_.wait(lk, [&] { return readers_ == 0 && !writer_held_; });
      trace->Record(obs::TraceStage::kLatchWait, obs::TraceEventKind::kEnd,
                    0, trace->NowNs() - t0);
    } else {
      cv_.wait(lk, [&] { return readers_ == 0 && !writer_held_; });
    }
  }
  --writers_waiting_;
  writer_held_ = true;
  writer_depth_ = 1;
  writer_ = std::this_thread::get_id();
  ++tls_class_latches.For(owner_);
}

void ObjectStore::ClassLatch::unlock() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (--writer_depth_ > 0) return;
    writer_held_ = false;
    writer_ = std::thread::id();
    --tls_class_latches.For(owner_);
  }
  cv_.notify_all();
}

void ObjectStore::ClassLatch::downgrade() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Mutators never downgrade from a re-entrant depth: the protocol is
    // one lock / one downgrade / one unlock_shared per public mutator.
    writer_held_ = false;
    writer_depth_ = 0;
    writer_ = std::thread::id();
    ++readers_;
    // tls count unchanged: still holding this latch, now shared.
  }
  // Wake readers queued on the exclusive phase (and nested sharers);
  // waiting writers keep waiting for our shared release.
  cv_.notify_all();
}

void ObjectStore::ClassLatch::lock_shared() {
  std::unique_lock<std::mutex> lk(mu_);
  if (writer_held_ && writer_ == std::this_thread::get_id()) {
    return;  // no-op under own exclusive: reads see the mutation in flight
  }
  const bool nested = tls_class_latches.For(owner_) > 0;
  cv_.wait(lk, [&] {
    // Top-level readers queue behind waiting writers (writer preference);
    // nested readers bypass that gate to keep the latch graph acyclic.
    return !writer_held_ && (nested || writers_waiting_ == 0);
  });
  ++readers_;
  ++tls_class_latches.For(owner_);
}

void ObjectStore::ClassLatch::unlock_shared() {
  bool wake;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (writer_held_ && writer_ == std::this_thread::get_id()) {
      return;  // matching the lock_shared no-op
    }
    --tls_class_latches.For(owner_);
    wake = (--readers_ == 0);
  }
  if (wake) cv_.notify_all();
}

Result<Object> BuildObject(
    const Catalog& catalog, ClassId cls,
    const std::vector<std::pair<std::string, Value>>& attrs) {
  Object obj;
  for (const auto& [name, value] : attrs) {
    KIMDB_ASSIGN_OR_RETURN(const AttributeDef* def,
                           catalog.ResolveAttr(cls, name));
    KIMDB_RETURN_IF_ERROR(catalog.CheckValue(def->domain, value));
    obj.Set(def->id, value);
  }
  return obj;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    BufferPool* bp, Catalog* catalog, Wal* wal, bool attach_to_catalog,
    size_t object_cache_bytes) {
  auto store = std::unique_ptr<ObjectStore>(new ObjectStore(
      bp, catalog, wal, attach_to_catalog, object_cache_bytes));
  // Create extents for classes that lack one; rebuild the directory and the
  // per-class serial high-water marks from the extents that exist.
  for (ClassId cls : catalog->AllClasses()) {
    KIMDB_RETURN_IF_ERROR(store->EnsureExtent(cls));
    KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, store->ExtentOf(cls));
    uint64_t max_serial = 0;
    Status st = heap->ForEach([&](RecordId rid, std::string_view bytes) {
      Result<Object> obj = Object::Decode(bytes);
      if (!obj.ok()) return obj.status();
      store->DirectoryPut(obj->oid(), rid);
      max_serial = std::max(max_serial, obj->oid().serial());
      return Status::OK();
    });
    KIMDB_RETURN_IF_ERROR(st);
    KIMDB_ASSIGN_OR_RETURN(ClassDef * def, catalog->GetClassMutable(cls));
    def->next_serial = std::max(def->next_serial, max_serial + 1);
  }
  return store;
}

Result<PageId> ObjectStore::ExtentHeadOfLocked(ClassId cls) const {
  if (attach_to_catalog_) {
    KIMDB_ASSIGN_OR_RETURN(const ClassDef* def, catalog_->GetClass(cls));
    return def->extent_head;
  }
  auto it = local_extent_heads_.find(cls);
  return it == local_extent_heads_.end() ? kInvalidPageId : it->second;
}

Status ObjectStore::EnsureExtent(ClassId cls) {
  std::lock_guard<std::mutex> lock(extents_mu_);
  KIMDB_ASSIGN_OR_RETURN(PageId head, ExtentHeadOfLocked(cls));
  if (head != kInvalidPageId) return Status::OK();
  KIMDB_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(bp_));
  if (attach_to_catalog_) {
    KIMDB_ASSIGN_OR_RETURN(ClassDef * def, catalog_->GetClassMutable(cls));
    def->extent_head = heap.head();
  } else {
    local_extent_heads_[cls] = heap.head();
  }
  extents_.emplace(cls, std::move(heap));
  return Status::OK();
}

Result<HeapFile*> ObjectStore::ExtentOf(ClassId cls) const {
  std::lock_guard<std::mutex> lock(extents_mu_);
  auto it = extents_.find(cls);
  if (it != extents_.end()) return &it->second;
  KIMDB_ASSIGN_OR_RETURN(PageId head, ExtentHeadOfLocked(cls));
  if (head == kInvalidPageId) {
    return Status::FailedPrecondition("class has no extent (EnsureExtent)");
  }
  KIMDB_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Open(bp_, head));
  return &extents_.emplace(cls, std::move(heap)).first->second;
}

Status ObjectStore::ValidateContents(ClassId cls,
                                     const Object& contents) const {
  KIMDB_ASSIGN_OR_RETURN(const Catalog::EffectiveSchema* schema,
                         catalog_->EffectiveSchemaFor(cls));
  for (const auto& [attr, value] : contents.attrs()) {
    if (attr >= kSysAttrBase) continue;  // system attributes are untyped
    auto it = schema->by_id.find(attr);
    if (it == schema->by_id.end()) {
      return Status::InvalidArgument(
          "attribute id " + std::to_string(attr) +
          " is not in the class's effective schema");
    }
    KIMDB_RETURN_IF_ERROR(catalog_->CheckValue(it->second->domain, value));
  }
  return Status::OK();
}

Result<RecordId> ObjectStore::DirectoryGet(Oid oid) const {
  DirShard& sh = DirShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(oid);
  if (it == sh.map.end()) {
    return Status::NotFound("object " + oid.ToString() + " not found");
  }
  return it->second;
}

void ObjectStore::DirectoryPut(Oid oid, RecordId rid) {
  DirShard& sh = DirShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto [it, inserted] = sh.map.insert_or_assign(oid, rid);
  (void)it;
  if (inserted) ++sh.class_counts[oid.class_id()];
}

void ObjectStore::DirectoryErase(Oid oid) {
  DirShard& sh = DirShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (sh.map.erase(oid) > 0) {
    auto it = sh.class_counts.find(oid.class_id());
    if (it != sh.class_counts.end() && --it->second == 0) {
      sh.class_counts.erase(it);
    }
  }
}

uint64_t ObjectStore::LiveCount(ClassId cls) const {
  uint64_t n = 0;
  for (const DirShard& sh : dir_shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.class_counts.find(cls);
    if (it != sh.class_counts.end()) n += it->second;
  }
  return n;
}

std::vector<ObjectStoreListener*> ObjectStore::ListenersSnapshot() const {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  return listeners_;
}

Status ObjectStore::LogOp(uint64_t txn, WalRecordType type, Oid oid,
                          const Object* before, const Object* after) {
  if (wal_ == nullptr) return Status::OK();
  WalRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.key = oid.raw();
  if (before != nullptr) before->EncodeTo(&rec.before);
  if (after != nullptr) after->EncodeTo(&rec.after);
  return wal_->Append(std::move(rec)).ok()
             ? Status::OK()
             : Status::IOError("wal append failed");
}

Result<Oid> ObjectStore::Insert(uint64_t txn, ClassId cls, Object contents,
                                Oid cluster_hint) {
  WriteGuard g(LatchFor(cls), &class_write_waits_, trace_,
               cls);
  KIMDB_RETURN_IF_ERROR(ValidateContents(cls, contents));
  KIMDB_ASSIGN_OR_RETURN(ClassDef * def, catalog_->GetClassMutable(cls));
  Oid oid = Oid::Make(cls, def->next_serial++);
  contents.set_oid(oid);

  KIMDB_RETURN_IF_ERROR(LogOp(txn, WalRecordType::kInsert, oid, nullptr,
                              &contents));

  PageId hint = kInvalidPageId;
  // A placement hint is honored only within the same class: extents are
  // per-class page chains, so clustering across classes would store the
  // record in a foreign extent and hide it from its own class scans
  // (cross-class hints degrade to normal placement). Same class == same
  // latch, so the hint's record cannot move while we place near it.
  if (!cluster_hint.is_nil() && cluster_hint.class_id() == cls) {
    Result<RecordId> rid = DirectoryGet(cluster_hint);
    if (rid.ok()) hint = rid->page_id;
  }

  std::string bytes;
  contents.EncodeTo(&bytes);
  // Classes defined after Open get their extent lazily on first insert.
  KIMDB_RETURN_IF_ERROR(EnsureExtent(cls));
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(cls));
  KIMDB_ASSIGN_OR_RETURN(RecordId rid, heap->Insert(bytes, hint));
  DirectoryPut(oid, rid);

  if (mvcc_ != nullptr) {
    // Chain base nullptr: the object did not exist before this transaction,
    // so no snapshot older than the commit may see it. txn 0 is the
    // non-transactional path (loaders, system writes): an instant commit,
    // never a pending stage -- nothing would ever promote or discard it.
    Object after = contents;
    KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&after));
    auto image = std::make_shared<const Object>(std::move(after));
    if (txn == 0) {
      mvcc_->CommitDirect(oid, nullptr, std::move(image));
    } else {
      mvcc_->StageWrite(txn, oid, nullptr, std::move(image));
    }
  }

  g.Downgrade();
  for (auto* l : ListenersSnapshot()) l->OnInsert(contents);
  return oid;
}

Status ObjectStore::UpdateHeld(WriteGuard& g, uint64_t txn,
                               const Object& obj) {
  KIMDB_ASSIGN_OR_RETURN(Object before, GetRawHeld(obj.oid()));
  KIMDB_RETURN_IF_ERROR(ValidateContents(obj.class_id(), obj));
  KIMDB_RETURN_IF_ERROR(
      LogOp(txn, WalRecordType::kUpdate, obj.oid(), &before, &obj));

  std::string bytes;
  obj.EncodeTo(&bytes);
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(obj.class_id()));
  KIMDB_ASSIGN_OR_RETURN(RecordId rid, DirectoryGet(obj.oid()));
  KIMDB_ASSIGN_OR_RETURN(RecordId new_rid, heap->Update(rid, bytes));
  DirectoryPut(obj.oid(), new_rid);

  if (mvcc_ != nullptr) {
    // Anchor the chain on the image committed before this writer touched
    // the object (a no-op if the chain already exists -- in particular when
    // `before` is this transaction's own earlier, uncommitted write).
    Object base = before;
    KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&base));
    Object after = obj;
    KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&after));
    auto base_p = std::make_shared<const Object>(std::move(base));
    auto after_p = std::make_shared<const Object>(std::move(after));
    if (txn == 0) {
      mvcc_->CommitDirect(obj.oid(), std::move(base_p), std::move(after_p));
    } else {
      mvcc_->StageWrite(txn, obj.oid(), std::move(base_p),
                        std::move(after_p));
    }
  }

  // Drop the cached image before the downgrade publishes the new state,
  // so a listener (or any reader) reading the OID back observes the new
  // state, never the stale cache entry.
  cache_.Invalidate(obj.oid());
  g.Downgrade();
  for (auto* l : ListenersSnapshot()) l->OnUpdate(before, obj);
  return Status::OK();
}

Status ObjectStore::Update(uint64_t txn, const Object& obj) {
  WriteGuard g(LatchFor(obj.class_id()), &class_write_waits_, trace_,
               obj.class_id());
  return UpdateHeld(g, txn, obj);
}

Status ObjectStore::SetAttr(uint64_t txn, Oid oid, std::string_view attr_name,
                            Value value) {
  WriteGuard g(LatchFor(oid.class_id()), &class_write_waits_, trace_,
               oid.class_id());
  KIMDB_ASSIGN_OR_RETURN(const AttributeDef* def,
                         catalog_->ResolveAttr(oid.class_id(), attr_name));
  KIMDB_RETURN_IF_ERROR(catalog_->CheckValue(def->domain, value));
  KIMDB_ASSIGN_OR_RETURN(Object obj, GetRawHeld(oid));
  obj.Set(def->id, std::move(value));
  return UpdateHeld(g, txn, obj);
}

Status ObjectStore::SetAttrSystem(uint64_t txn, Oid oid, AttrId attr,
                                  Value value) {
  WriteGuard g(LatchFor(oid.class_id()), &class_write_waits_, trace_,
               oid.class_id());
  if (attr < kSysAttrBase) {
    return Status::InvalidArgument("not a system attribute");
  }
  KIMDB_ASSIGN_OR_RETURN(Object obj, GetRawHeld(oid));
  if (value.is_null()) {
    obj.Unset(attr);
  } else {
    obj.Set(attr, std::move(value));
  }
  return UpdateHeld(g, txn, obj);
}

Status ObjectStore::Delete(uint64_t txn, Oid oid) {
  WriteGuard g(LatchFor(oid.class_id()), &class_write_waits_, trace_,
               oid.class_id());
  KIMDB_ASSIGN_OR_RETURN(Object before, GetRawHeld(oid));
  KIMDB_RETURN_IF_ERROR(
      LogOp(txn, WalRecordType::kDelete, oid, &before, nullptr));
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(oid.class_id()));
  KIMDB_ASSIGN_OR_RETURN(RecordId rid, DirectoryGet(oid));
  KIMDB_RETURN_IF_ERROR(heap->Delete(rid));
  DirectoryErase(oid);
  if (mvcc_ != nullptr) {
    Object base = before;
    KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&base));
    auto base_p = std::make_shared<const Object>(std::move(base));
    if (txn == 0) {
      mvcc_->CommitDirect(oid, std::move(base_p), nullptr);
    } else {
      mvcc_->StageWrite(txn, oid, std::move(base_p),
                        nullptr);  // pending delete
    }
  }
  cache_.Invalidate(oid);
  g.Downgrade();
  for (auto* l : ListenersSnapshot()) l->OnDelete(before);
  return Status::OK();
}

bool ObjectStore::Exists(Oid oid) const {
  // Shard mutex only: presence is a point-in-time fact, and the shard
  // mutex alone makes the map read safe.
  DirShard& sh = DirShardFor(oid);
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.map.count(oid) > 0;
}

Result<RecordId> ObjectStore::DirectoryLookup(Oid oid) const {
  return DirectoryGet(oid);
}

Result<Object> ObjectStore::GetRawHeld(Oid oid) const {
  KIMDB_ASSIGN_OR_RETURN(RecordId rid, DirectoryGet(oid));
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(oid.class_id()));
  KIMDB_ASSIGN_OR_RETURN(std::string bytes, heap->Get(rid));
  return Object::Decode(bytes);
}

Result<Object> ObjectStore::GetRaw(Oid oid) const {
  ReadGuard lock(LatchFor(oid.class_id()));
  return GetRawHeld(oid);
}

Status ObjectStore::MaterializeInPlace(Object* obj) const {
  KIMDB_ASSIGN_OR_RETURN(const Catalog::EffectiveSchema* schema,
                         catalog_->EffectiveSchemaFor(obj->class_id()));
  // Fill defaults for attributes the stored image lacks.
  for (const AttributeDef* a : schema->defaulted) {
    if (!obj->Has(a->id)) obj->Set(a->id, a->default_value);
  }
  // Elide values of attributes no longer in the schema.
  std::vector<AttrId> drop;
  for (const auto& [attr, value] : obj->attrs()) {
    if (attr >= kSysAttrBase) continue;
    if (schema->by_id.count(attr) == 0) drop.push_back(attr);
  }
  for (AttrId a : drop) obj->Unset(a);
  return Status::OK();
}

Result<Object> ObjectStore::Get(Oid oid) const {
  bool unused;
  return Get(oid, &unused);
}

Result<Object> ObjectStore::Get(Oid oid, bool* cache_hit) const {
  obs::Timer timer(get_ns_);
  *cache_hit = false;
  // Lock-free fast path: a hit never needs the class latch. The entry's
  // schema-version tag guarantees it matches the current schema, and any
  // completed mutation already invalidated it (happens-before via the
  // cache's shard mutex).
  uint64_t schema_version = catalog_->schema_version();
  if (std::shared_ptr<const Object> hit = cache_.Lookup(oid, schema_version)) {
    *cache_hit = true;
    return *hit;
  }
  ReadGuard lock(LatchFor(oid.class_id()));
  KIMDB_ASSIGN_OR_RETURN(Object obj, GetRawHeld(oid));
  KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&obj));
  // Fill while still holding the class-shared latch: no exclusive
  // mutation of this class can be in flight, so this image is current and
  // its invalidation (if any) must come from a *later* writer -- a stale
  // image can never be resurrected. Tag with the version read *before*
  // materialization: if the schema evolved in between, the tag is stale
  // versus the new version and the entry self-invalidates on next lookup
  // instead of masquerading as current.
  uint64_t commit_ts = 0;
  if (mvcc_ == nullptr || mvcc_->CacheFillTs(oid, &commit_ts)) {
    cache_.Insert(oid, obj, schema_version, commit_ts);
  }
  return obj;
}

Result<std::shared_ptr<const Object>> ObjectStore::GetShared(Oid oid) const {
  bool unused;
  return GetShared(oid, &unused);
}

Result<std::shared_ptr<const Object>> ObjectStore::GetShared(
    Oid oid, bool* cache_hit) const {
  obs::Timer timer(get_ns_);
  *cache_hit = false;
  // Same protocol as Get (lock-free hit, fill under the class-shared
  // latch with the pre-materialization version tag), minus the defensive
  // copy: hit and miss both return the exact instance the cache holds.
  uint64_t schema_version = catalog_->schema_version();
  if (std::shared_ptr<const Object> hit = cache_.Lookup(oid, schema_version)) {
    *cache_hit = true;
    return hit;
  }
  ReadGuard lock(LatchFor(oid.class_id()));
  KIMDB_ASSIGN_OR_RETURN(Object obj, GetRawHeld(oid));
  KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&obj));
  auto shared = std::make_shared<const Object>(std::move(obj));
  uint64_t commit_ts = 0;
  if (mvcc_ == nullptr || mvcc_->CacheFillTs(oid, &commit_ts)) {
    cache_.Insert(oid, shared, schema_version, commit_ts);
  }
  return shared;
}

Result<std::shared_ptr<const Object>> ObjectStore::GetSharedSnapshot(
    Oid oid, uint64_t read_ts, bool* cache_hit) const {
  if (mvcc_ == nullptr) return GetShared(oid, cache_hit);
  obs::Timer timer(get_ns_);
  *cache_hit = false;
  // A live cache entry is always the newest committed image (mutators
  // invalidate at staging, and fills are gated on "no pending write"), so
  // a commit-ts tag at or below read_ts is exactly the version this
  // snapshot must see. No class latch, no lock-manager traffic.
  uint64_t schema_version = catalog_->schema_version();
  if (std::shared_ptr<const Object> hit =
          cache_.LookupSnapshot(oid, schema_version, read_ts)) {
    *cache_hit = true;
    return hit;
  }
  // Chain resolution off-lock: committed versions are immutable and the
  // resolved shared_ptr stays valid past any concurrent prune.
  std::shared_ptr<const Object> image;
  switch (mvcc_->Resolve(oid, read_ts, &image)) {
    case MvccLookup::kImage:
      return image;
    case MvccLookup::kInvisible:
      return Status::NotFound("object " + oid.ToString() +
                              " not visible at snapshot");
    case MvccLookup::kNoChain:
      break;
  }
  ReadGuard lock(LatchFor(oid.class_id()));
  // Re-resolve under the class-shared latch: a writer that staged a chain
  // after the first check has already dirtied the heap, but staging
  // happens under the class's exclusive latch, so the chain is now
  // guaranteed observable.
  switch (mvcc_->Resolve(oid, read_ts, &image)) {
    case MvccLookup::kImage:
      return image;
    case MvccLookup::kInvisible:
      return Status::NotFound("object " + oid.ToString() +
                              " not visible at snapshot");
    case MvccLookup::kNoChain:
      break;
  }
  // No chain while we hold the class-shared latch: the heap image is
  // committed, and any chain it once had was pruned at or below the
  // watermark -- which is at or below every live snapshot's read_ts, ours
  // included.
  KIMDB_ASSIGN_OR_RETURN(Object obj, GetRawHeld(oid));
  KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&obj));
  auto shared = std::make_shared<const Object>(std::move(obj));
  uint64_t commit_ts = 0;
  if (mvcc_->CacheFillTs(oid, &commit_ts)) {
    cache_.Insert(oid, shared, schema_version, commit_ts);
  }
  return shared;
}

Result<Object> ObjectStore::GetSnapshot(Oid oid, uint64_t read_ts,
                                        bool* cache_hit) const {
  KIMDB_ASSIGN_OR_RETURN(std::shared_ptr<const Object> shared,
                         GetSharedSnapshot(oid, read_ts, cache_hit));
  return *shared;
}

Status ObjectStore::ForEachInClass(
    ClassId cls, const std::function<Status(const Object&)>& fn) const {
  auto call = [&fn](Object& obj) -> Status { return fn(obj); };
  KIMDB_ASSIGN_OR_RETURN(std::vector<PageId> pages, ExtentPages(cls));
  for (PageId page : pages) {
    KIMDB_RETURN_IF_ERROR(ForEachInClassOnPage(cls, page, call));
  }
  return Status::OK();
}

Status ObjectStore::ForEachRawInClass(
    ClassId cls,
    const std::function<Status(RecordId, const Object&)>& fn) const {
  Result<HeapFile*> heap_r = ExtentOf(cls);
  if (!heap_r.ok()) {
    // A class whose extent was never created has an empty extent.
    if (heap_r.status().IsFailedPrecondition()) return Status::OK();
    return heap_r.status();
  }
  // Off-lock like every extent scan: page reads go through the thread-safe
  // buffer pool and the HeapFile slot is node-stable (see
  // ForEachInClassOnPage).
  return (*heap_r)->ForEach([&](RecordId rid, std::string_view bytes) {
    KIMDB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
    return fn(rid, obj);
  });
}

std::vector<std::pair<Oid, RecordId>> ObjectStore::DirectorySnapshot()
    const {
  // Shard-by-shard copy: consistent within a shard, not across shards
  // (tooling/checker use only -- the checker runs with writers quiesced).
  std::vector<std::pair<Oid, RecordId>> out;
  for (const DirShard& sh : dir_shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [oid, rid] : sh.map) out.push_back({oid, rid});
  }
  return out;
}

Result<std::vector<PageId>> ObjectStore::ExtentPages(ClassId cls) const {
  Result<HeapFile*> heap_r = ExtentOf(cls);
  if (!heap_r.ok()) {
    if (heap_r.status().IsFailedPrecondition()) {
      return std::vector<PageId>{};  // never-created extent: empty
    }
    return heap_r.status();
  }
  return (*heap_r)->Pages();
}

Status ObjectStore::ForEachInClassOnPage(
    ClassId cls, PageId page,
    const std::function<Status(Object&)>& fn) const {
  Result<HeapFile*> heap_r = ExtentOf(cls);
  if (!heap_r.ok()) {
    if (heap_r.status().IsFailedPrecondition()) return Status::OK();
    return heap_r.status();
  }
  HeapFile* heap = *heap_r;
  // Writers rewrite records in place on the buffer frame under the
  // class-exclusive latch, so an unlatched decode can observe a torn
  // image. Copy this page's record bytes under the class-SHARED latch --
  // held only for the memcpy, so concurrent scans still never serialize
  // on each other -- then decode and run callbacks off-latch, preserving
  // the invariant that a callback may re-enter the store (even this
  // class) without recursive-latch deadlock. MaterializeInPlace only
  // reads the catalog and the HeapFile slot in extents_ is node-stable,
  // so everything past the copy is latch-free.
  std::vector<std::string> records;
  {
    ReadGuard lock(LatchFor(cls));
    KIMDB_RETURN_IF_ERROR(
        heap->ForEachOnPage(page, [&](RecordId, std::string_view bytes) {
          records.emplace_back(bytes);
          return Status::OK();
        }));
  }
  for (const std::string& bytes : records) {
    KIMDB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
    KIMDB_RETURN_IF_ERROR(MaterializeInPlace(&obj));
    KIMDB_RETURN_IF_ERROR(fn(obj));
  }
  return Status::OK();
}

Status ObjectStore::ForEachInClassPartitioned(
    ClassId cls, size_t n_partitions, size_t partition,
    const std::function<Status(const Object&)>& fn) const {
  if (n_partitions == 0 || partition >= n_partitions) {
    return Status::InvalidArgument("bad scan partition index");
  }
  KIMDB_ASSIGN_OR_RETURN(std::vector<PageId> pages, ExtentPages(cls));
  // Contiguous ranges keep each worker's page reads physically local.
  size_t chunk = (pages.size() + n_partitions - 1) / n_partitions;
  size_t begin = partition * chunk;
  size_t end = std::min(pages.size(), begin + chunk);
  auto call = [&fn](Object& obj) -> Status { return fn(obj); };
  for (size_t i = begin; i < end; ++i) {
    KIMDB_RETURN_IF_ERROR(ForEachInClassOnPage(cls, pages[i], call));
  }
  return Status::OK();
}

Status ObjectStore::ForEachInHierarchy(
    ClassId cls, const std::function<Status(const Object&)>& fn) const {
  for (ClassId c : catalog_->Subtree(cls)) {
    KIMDB_RETURN_IF_ERROR(ForEachInClass(c, fn));
  }
  return Status::OK();
}

Result<uint64_t> ObjectStore::CountClass(ClassId cls) const {
  uint64_t n = 0;
  KIMDB_RETURN_IF_ERROR(ForEachInClass(cls, [&](const Object&) {
    ++n;
    return Status::OK();
  }));
  return n;
}

Status ObjectStore::ApplyUpsertHeld(WriteGuard& g, const Object& obj) {
  Result<RecordId> existing = DirectoryGet(obj.oid());
  std::string bytes;
  obj.EncodeTo(&bytes);
  if (existing.ok()) {
    // Idempotent redo / rollback undo: overwrite the existing image.
    Result<Object> before = GetRawHeld(obj.oid());
    KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(obj.class_id()));
    KIMDB_ASSIGN_OR_RETURN(RecordId new_rid, heap->Update(*existing, bytes));
    DirectoryPut(obj.oid(), new_rid);
    // Undo (txn abort) and redo (recovery) both land here: the cached
    // image of the clobbered version must go before the downgrade
    // publishes the new state.
    cache_.Invalidate(obj.oid());
    g.Downgrade();
    if (before.ok()) {
      for (auto* l : ListenersSnapshot()) l->OnUpdate(*before, obj);
    }
    return Status::OK();
  }
  KIMDB_RETURN_IF_ERROR(EnsureExtent(obj.class_id()));
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(obj.class_id()));
  KIMDB_ASSIGN_OR_RETURN(RecordId rid, heap->Insert(bytes));
  DirectoryPut(obj.oid(), rid);
  // A redo of an insert whose delete was cached as NotFound can't happen
  // (negative results are not cached), but a resurrecting undo must still
  // clear whatever image preceded the delete.
  cache_.Invalidate(obj.oid());
  // Keep the serial allocator ahead of replayed OIDs.
  KIMDB_ASSIGN_OR_RETURN(ClassDef * def,
                         catalog_->GetClassMutable(obj.class_id()));
  def->next_serial = std::max(def->next_serial, obj.oid().serial() + 1);
  g.Downgrade();
  for (auto* l : ListenersSnapshot()) l->OnInsert(obj);
  return Status::OK();
}

Status ObjectStore::ApplyInsert(const Object& obj) {
  WriteGuard g(LatchFor(obj.class_id()), &class_write_waits_, trace_,
               obj.class_id());
  return ApplyUpsertHeld(g, obj);
}

Status ObjectStore::ApplyUpdate(const Object& obj) {
  WriteGuard g(LatchFor(obj.class_id()), &class_write_waits_, trace_,
               obj.class_id());
  return ApplyUpsertHeld(g, obj);
}

Status ObjectStore::ApplyDelete(Oid oid) {
  WriteGuard g(LatchFor(oid.class_id()), &class_write_waits_, trace_,
               oid.class_id());
  Result<RecordId> existing = DirectoryGet(oid);
  if (!existing.ok()) return Status::OK();  // idempotent
  Result<Object> before = GetRawHeld(oid);
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(oid.class_id()));
  KIMDB_RETURN_IF_ERROR(heap->Delete(*existing));
  DirectoryErase(oid);
  cache_.Invalidate(oid);
  g.Downgrade();
  if (before.ok()) {
    for (auto* l : ListenersSnapshot()) l->OnDelete(*before);
  }
  return Status::OK();
}

Status ObjectStore::RewriteExtent(ClassId cls) {
  // Exclusive for the whole rewrite; no listener notification, so no
  // downgrade phase (record identities don't change, only their bytes).
  WriteGuard g(LatchFor(cls), &class_write_waits_, trace_,
               cls);
  std::vector<Object> materialized;
  KIMDB_RETURN_IF_ERROR(ForEachInClass(cls, [&](const Object& obj) {
    materialized.push_back(obj);
    return Status::OK();
  }));
  KIMDB_ASSIGN_OR_RETURN(HeapFile * heap, ExtentOf(cls));
  for (const Object& obj : materialized) {
    std::string bytes;
    obj.EncodeTo(&bytes);
    KIMDB_ASSIGN_OR_RETURN(RecordId rid, DirectoryGet(obj.oid()));
    KIMDB_ASSIGN_OR_RETURN(RecordId new_rid, heap->Update(rid, bytes));
    DirectoryPut(obj.oid(), new_rid);
  }
  // Every record moved; start the cache over rather than invalidating
  // one OID at a time.
  cache_.Clear();
  return Status::OK();
}

void ObjectStore::AddListener(ObjectStoreListener* listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.push_back(listener);
}

void ObjectStore::RemoveListener(ObjectStoreListener* listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

}  // namespace kimdb
