#ifndef KIMDB_OBJECT_VERSIONS_H_
#define KIMDB_OBJECT_VERSIONS_H_

#include <vector>

#include "object/object_store.h"

namespace kimdb {

/// Version management (paper §3.3 and §5.5, following CHOU86/CHOU88):
///
///  * a *generic object* stands for the versioned design object; it holds
///    the set of versions and designates a *default version*;
///  * references may point at the generic object and are *dynamically
///    bound*: Resolve() maps them to the current default version, so
///    changing the default retargets every such reference at once;
///  * versions form a derivation hierarchy (kAttrDerivedFrom);
///  * a *released* version is immutable (updates must derive a new
///    version) -- the layered-architecture point of §5.5: this class is the
///    low-level mechanism; installation-specific policies go on top.
class VersionManager {
 public:
  explicit VersionManager(ObjectStore* store) : store_(store) {}

  /// Turns an existing object into version 1 of a new versioned object.
  /// Returns the OID of the generic object.
  Result<Oid> MakeVersionable(uint64_t txn, Oid first);

  /// Derives a new (working) version from an existing version: the new
  /// version starts as a copy, gets the next version number, and is added
  /// to the generic object's version set.
  Result<Oid> DeriveVersion(uint64_t txn, Oid from);

  /// Marks a version released (immutable). Idempotent.
  Status Release(uint64_t txn, Oid version);

  /// Changes the generic object's default version.
  Status SetDefault(uint64_t txn, Oid generic, Oid version);

  /// Dynamic binding: a generic OID resolves to its default version; any
  /// other OID resolves to itself.
  Result<Oid> Resolve(Oid oid) const;

  Result<Oid> GenericOf(Oid version) const;
  Result<std::vector<Oid>> VersionsOf(Oid generic) const;
  Result<Oid> DerivedFrom(Oid version) const;
  Result<int64_t> VersionNumberOf(Oid version) const;

  bool IsGeneric(Oid oid) const;
  bool IsVersion(Oid oid) const;
  bool IsReleased(Oid oid) const;

  /// OK unless the object is a released version (callers gate updates on
  /// this to enforce immutability).
  Status CheckMutable(Oid oid) const;

 private:
  ObjectStore* store_;
};

}  // namespace kimdb

#endif  // KIMDB_OBJECT_VERSIONS_H_
