#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace kimdb {
namespace obs {

uint64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank: the 1-based rank of the p-quantile observation is
  // ceil(p * count) (so p95 of two samples is the larger one); walk the
  // cumulative bucket counts until we reach it.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket 0 holds only the value 0; bucket i>=1 spans [2^(i-1), 2^i).
      if (i == 0) return 0;
      uint64_t upper = (i >= 64) ? UINT64_MAX : ((uint64_t{1} << i) - 1);
      // Never report a bound above the true maximum.
      return upper < max ? upper : max;
    }
  }
  return max;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void WindowedHistogram::Rotate(int64_t wall_ms) {
  HistogramData now = base_->data();
  std::lock_guard<std::mutex> lock(mu_);
  HistogramWindow w;
  w.seq = ++seq_;
  w.wall_ms = wall_ms;
  w.data.count = now.count > last_.count ? now.count - last_.count : 0;
  w.data.sum = now.sum > last_.sum ? now.sum - last_.sum : 0;
  // The cumulative max is the best per-window bound available without a
  // hot-path reset; an idle window reports 0 via the empty-count check.
  w.data.max = w.data.count > 0 ? now.max : 0;
  for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
    w.data.buckets[i] = now.buckets[i] > last_.buckets[i]
                            ? now.buckets[i] - last_.buckets[i]
                            : 0;
  }
  last_ = now;
  windows_.push_back(std::move(w));
  while (windows_.size() > max_windows_) windows_.pop_front();
}

std::vector<HistogramWindow> WindowedHistogram::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<HistogramWindow>(windows_.begin(), windows_.end());
}

HistogramWindow WindowedHistogram::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.empty() ? HistogramWindow{} : windows_.back();
}

namespace {

int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendHistText(std::string* out, const HistogramData& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%" PRIu64 " mean=%.0f p50=%" PRIu64 " p95=%" PRIu64
                " p99=%" PRIu64 " max=%" PRIu64,
                h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95),
                h.Percentile(0.99), h.max);
  out->append(buf);
}

void AppendHistJson(std::string* out, const HistogramData& h) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
                ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 "}",
                h.count, h.sum, h.Mean(), h.Percentile(0.50),
                h.Percentile(0.95), h.Percentile(0.99), h.max);
  out->append(buf);
}

}  // namespace

int64_t MetricsSnapshot::Value(const std::string& name, int64_t def) const {
  auto it = metrics.find(name);
  if (it == metrics.end()) return def;
  if (it->second.kind == MetricValue::Kind::kHistogram) {
    return static_cast<int64_t>(it->second.hist.count);
  }
  return it->second.num;
}

HistogramData MetricsSnapshot::Hist(const std::string& name) const {
  auto it = metrics.find(name);
  if (it == metrics.end() || it->second.kind != MetricValue::Kind::kHistogram) {
    return HistogramData{};
  }
  return it->second.hist;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  out += "obs.seq " + std::to_string(seq) + '\n';
  out += "obs.wall_ms " + std::to_string(wall_ms) + '\n';
  for (const auto& [name, v] : metrics) {
    out += name;
    out += ' ';
    if (v.kind == MetricValue::Kind::kHistogram) {
      AppendHistText(&out, v.hist);
    } else {
      out += std::to_string(v.num);
    }
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"obs.seq\":" + std::to_string(seq);
  out += ",\"obs.wall_ms\":" + std::to_string(wall_ms);
  bool first = false;
  for (const auto& [name, v] : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    if (v.kind == MetricValue::Kind::kHistogram) {
      AppendHistJson(&out, v.hist);
    } else {
      out += std::to_string(v.num);
    }
  }
  out += '}';
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCollector(std::string name,
                                        std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.emplace_back(std::move(name), std::move(fn));
}

WindowedHistogram* MetricsRegistry::EnableWindows(const std::string& name,
                                                  size_t max_windows) {
  Histogram* base = GetHistogram(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windows_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(base, max_windows);
  }
  return slot.get();
}

WindowedHistogram* MetricsRegistry::GetWindows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(name);
  return it == windows_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::RotateWindows() {
  int64_t now_ms = WallNowMs();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, w] : windows_) w->Rotate(now_ms);
}

std::vector<std::string> MetricsRegistry::WindowedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(windows_.size());
  for (const auto& [name, w] : windows_) names.push_back(name);
  return names;
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snap;
  snap.seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.wall_ms = WallNowMs();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kCounter;
    v.num = static_cast<int64_t>(c->value());
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kGauge;
    v.num = g->value();
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kHistogram;
    v.hist = h->data();
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, fn] : collectors_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kCounter;
    v.num = static_cast<int64_t>(fn());
    snap.metrics.emplace(name, std::move(v));
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::Diff(const MetricsSnapshot& before,
                                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.seq = after.seq;
  out.wall_ms = after.wall_ms;
  for (const auto& [name, a] : after.metrics) {
    MetricValue d = a;
    auto it = before.metrics.find(name);
    if (it != before.metrics.end() && it->second.kind == a.kind) {
      const MetricValue& b = it->second;
      switch (a.kind) {
        case MetricValue::Kind::kCounter:
          d.num = a.num > b.num ? a.num - b.num : 0;
          break;
        case MetricValue::Kind::kGauge:
          break;  // gauges are levels: report the "after" reading
        case MetricValue::Kind::kHistogram:
          d.hist.count =
              a.hist.count > b.hist.count ? a.hist.count - b.hist.count : 0;
          d.hist.sum = a.hist.sum > b.hist.sum ? a.hist.sum - b.hist.sum : 0;
          for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
            d.hist.buckets[i] = a.hist.buckets[i] > b.hist.buckets[i]
                                    ? a.hist.buckets[i] - b.hist.buckets[i]
                                    : 0;
          }
          // max does not subtract; keep the "after" max as the best bound.
          break;
      }
    }
    out.metrics.emplace(name, std::move(d));
  }
  return out;
}

}  // namespace obs
}  // namespace kimdb
