#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace kimdb {
namespace obs {

uint64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank: the 1-based rank of the p-quantile observation is
  // ceil(p * count) (so p95 of two samples is the larger one); walk the
  // cumulative bucket counts until we reach it.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket 0 holds only the value 0; bucket i>=1 spans [2^(i-1), 2^i).
      if (i == 0) return 0;
      uint64_t upper = (i >= 64) ? UINT64_MAX : ((uint64_t{1} << i) - 1);
      // Never report a bound above the true maximum.
      return upper < max ? upper : max;
    }
  }
  return max;
}

namespace {

void AppendHistText(std::string* out, const HistogramData& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%" PRIu64 " mean=%.0f p50=%" PRIu64 " p95=%" PRIu64
                " p99=%" PRIu64 " max=%" PRIu64,
                h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95),
                h.Percentile(0.99), h.max);
  out->append(buf);
}

void AppendHistJson(std::string* out, const HistogramData& h) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
                ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 "}",
                h.count, h.sum, h.Mean(), h.Percentile(0.50),
                h.Percentile(0.95), h.Percentile(0.99), h.max);
  out->append(buf);
}

}  // namespace

int64_t MetricsSnapshot::Value(const std::string& name, int64_t def) const {
  auto it = metrics.find(name);
  if (it == metrics.end()) return def;
  if (it->second.kind == MetricValue::Kind::kHistogram) {
    return static_cast<int64_t>(it->second.hist.count);
  }
  return it->second.num;
}

HistogramData MetricsSnapshot::Hist(const std::string& name) const {
  auto it = metrics.find(name);
  if (it == metrics.end() || it->second.kind != MetricValue::Kind::kHistogram) {
    return HistogramData{};
  }
  return it->second.hist;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, v] : metrics) {
    out += name;
    out += ' ';
    if (v.kind == MetricValue::Kind::kHistogram) {
      AppendHistText(&out, v.hist);
    } else {
      out += std::to_string(v.num);
    }
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;  // metric names are identifier-like; no escaping needed
    out += "\":";
    if (v.kind == MetricValue::Kind::kHistogram) {
      AppendHistJson(&out, v.hist);
    } else {
      out += std::to_string(v.num);
    }
  }
  out += '}';
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCollector(std::string name,
                                        std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.emplace_back(std::move(name), std::move(fn));
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kCounter;
    v.num = static_cast<int64_t>(c->value());
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kGauge;
    v.num = g->value();
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kHistogram;
    v.hist = h->data();
    snap.metrics.emplace(name, std::move(v));
  }
  for (const auto& [name, fn] : collectors_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kCounter;
    v.num = static_cast<int64_t>(fn());
    snap.metrics.emplace(name, std::move(v));
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::Diff(const MetricsSnapshot& before,
                                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, a] : after.metrics) {
    MetricValue d = a;
    auto it = before.metrics.find(name);
    if (it != before.metrics.end() && it->second.kind == a.kind) {
      const MetricValue& b = it->second;
      switch (a.kind) {
        case MetricValue::Kind::kCounter:
          d.num = a.num > b.num ? a.num - b.num : 0;
          break;
        case MetricValue::Kind::kGauge:
          break;  // gauges are levels: report the "after" reading
        case MetricValue::Kind::kHistogram:
          d.hist.count =
              a.hist.count > b.hist.count ? a.hist.count - b.hist.count : 0;
          d.hist.sum = a.hist.sum > b.hist.sum ? a.hist.sum - b.hist.sum : 0;
          for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
            d.hist.buckets[i] = a.hist.buckets[i] > b.hist.buckets[i]
                                    ? a.hist.buckets[i] - b.hist.buckets[i]
                                    : 0;
          }
          // max does not subtract; keep the "after" max as the best bound.
          break;
      }
    }
    out.metrics.emplace(name, std::move(d));
  }
  return out;
}

}  // namespace obs
}  // namespace kimdb
