#ifndef KIMDB_OBS_TRACE_H_
#define KIMDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kimdb {
namespace obs {

/// Second observability layer (DESIGN.md §15): where the metrics registry
/// answers "how much work, how slow on average", the flight recorder
/// answers "what did *this* commit do, in what order, and where did its
/// 40ms go". Each thread records compact binary events into its own
/// lock-free ring; a dump merges the newest events of every ring into one
/// timestamp-ordered JSON trace -- cheap enough to leave armed in soak
/// runs and crash-injection matrices.

/// Pipeline stage identifiers carried by every trace event. Values are
/// stable across a run (they are dumped numerically into slow-op records)
/// but not across versions -- dumps name them symbolically.
enum class TraceStage : uint8_t {
  kNone = 0,
  // Commit pipeline (TxnManager::Commit, in order).
  kCommit = 1,       // whole commit; end arg = total ns
  kCommitClock = 2,  // commit_mu hold: ts allocation + WAL slot reserve
  kCommitTs = 3,     // instant; arg = allocated commit timestamp
  kMvccPromote = 4,  // version-chain promotion to the commit ts
  kWalAppend = 5,    // AppendReserved: slot write-out off the clock
  kWalSyncWait = 6,  // SyncTo: frontier wait + group commit
  kMvccPublish = 7,  // FinishCommit: dense commit-frontier publish
  kMvccPrune = 8,    // post-publish version pruning
  kCommitFail = 9,   // instant; arg = commit ts whose WAL slot failed
  kTxnAbort = 10,    // whole abort; end arg = total ns
  // Object store.
  kLatchWait = 11,  // contended ClassLatch acquire; begin arg = class id
  // WAL internals (leader only).
  kWalFsync = 12,  // the group-commit leader's own fdatasync
  // Exec layer.
  kQuery = 13,   // whole query execution; end arg = total ns
  kExecOp = 14,  // one operator's open..close window; arg = operator tag
  // Markers.
  kSlowOp = 15,     // instant; arg = total ns of the logged slow operation
  kFaultTrip = 16,  // instant; arg = FaultOp that fired
};

/// Symbolic name for a stage ("wal_sync_wait"); never nullptr.
const char* TraceStageName(TraceStage s);

enum class TraceEventKind : uint8_t {
  kBegin = 0,    // arg = stage-specific payload (class id, operator tag)
  kEnd = 1,      // arg = elapsed nanoseconds of the span
  kInstant = 2,  // arg = stage-specific payload
};

/// One decoded trace event. `ts_ns` is steady-clock time relative to the
/// recorder's construction; `wall_anchor_ms` on the recorder converts it
/// to wall-clock time.
struct TraceEvent {
  uint64_t ts_ns = 0;
  uint64_t txn = 0;  // transaction id, or 0 for non-transactional events
  uint64_t arg = 0;
  TraceStage stage = TraceStage::kNone;
  TraceEventKind kind = TraceEventKind::kInstant;
  uint32_t tid = 0;  // recorder-local thread slot (not an OS thread id)
};

struct TraceThreadRing;  // internal: one thread's event ring (trace.cc)

/// Lock-free flight recorder: one single-writer ring of packed events per
/// recording thread, overwritten oldest-first on wrap (the newest events
/// always survive; overwrites are counted as drops). Record() is wait-free
/// for the owning thread -- four relaxed stores plus one release store of
/// the ring head -- and a single relaxed load when the recorder is
/// disabled. Snapshot() may run concurrently with recording: it reads each
/// ring's head with acquire ordering and discards the one slot the writer
/// may be overwriting mid-read, so it never reports a torn event.
class FlightRecorder {
 public:
  /// `ring_events` is the per-thread capacity, rounded up to a power of
  /// two (minimum 16). The rings themselves are allocated lazily, one per
  /// thread that actually records.
  explicit FlightRecorder(size_t ring_events = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event to the calling thread's ring. No-op when disabled.
  void Record(TraceStage stage, TraceEventKind kind, uint64_t txn,
              uint64_t arg) {
    if (!enabled()) return;
    RecordSlow(stage, kind, txn, arg);
  }

  /// Steady-clock nanoseconds since recorder construction (the event
  /// timestamp domain).
  uint64_t NowNs() const;

  /// The newest events across all rings, merged and sorted by timestamp.
  /// `max_events` > 0 keeps only the newest that many.
  std::vector<TraceEvent> Snapshot(size_t max_events = 0) const;

  /// Snapshot() rendered as a JSON object: recorder metadata plus an
  /// `events` array sorted by timestamp.
  std::string DumpJson(size_t max_events = 0) const;

  /// Events overwritten before any snapshot could read them (wraparound),
  /// summed across rings.
  uint64_t dropped() const;
  /// Events ever recorded, summed across rings.
  uint64_t recorded() const;
  /// Rings allocated so far (== distinct recording threads, minus reuse).
  size_t ring_count() const;

  size_t ring_capacity() const { return ring_capacity_; }
  /// Wall-clock milliseconds (unix epoch) at ts_ns == 0.
  int64_t wall_anchor_ms() const { return wall_anchor_ms_; }

 private:
  friend struct TraceTls;

  void RecordSlow(TraceStage stage, TraceEventKind kind, uint64_t txn,
                  uint64_t arg);
  TraceThreadRing* RingForThisThread();
  void RetireRing(TraceThreadRing* ring);

  const size_t ring_capacity_;  // power of two
  const uint64_t id_;           // process-unique recorder id (TLS cache key)
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point start_;
  int64_t wall_anchor_ms_ = 0;

  mutable std::mutex reg_mu_;  // guards rings_ / free_rings_
  std::vector<std::unique_ptr<TraceThreadRing>> rings_;
  std::vector<TraceThreadRing*> free_rings_;  // retired by exited threads
};

/// RAII begin/end span: records a kBegin on construction and a kEnd
/// carrying the elapsed nanoseconds on destruction. Free when the
/// recorder is null or disabled (one relaxed load at construction).
class StageScope {
 public:
  StageScope(FlightRecorder* r, TraceStage stage, uint64_t txn,
             uint64_t arg = 0)
      : r_(r != nullptr && r->enabled() ? r : nullptr),
        stage_(stage),
        txn_(txn) {
    if (r_ != nullptr) {
      begin_ns_ = r_->NowNs();
      r_->Record(stage_, TraceEventKind::kBegin, txn_, arg);
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope() { End(); }

  /// Records the kEnd now and disarms; elapsed nanoseconds are returned
  /// (0 when the scope was never armed).
  uint64_t End() {
    if (r_ == nullptr) return 0;
    uint64_t dur = r_->NowNs() - begin_ns_;
    r_->Record(stage_, TraceEventKind::kEnd, txn_, dur);
    r_ = nullptr;
    return dur;
  }

 private:
  FlightRecorder* r_;
  TraceStage stage_;
  uint64_t txn_;
  uint64_t begin_ns_ = 0;
};

/// One record in the slow-operation log: an operation that exceeded the
/// configured threshold, with its complete per-stage breakdown.
struct SlowOp {
  int64_t wall_ms = 0;  // wall-clock time the operation finished
  uint64_t txn = 0;     // transaction id (0 for queries)
  uint64_t total_ns = 0;
  std::string kind;  // "commit" | "query"
  // Stage -> nanoseconds spent, in pipeline order. Stages that did not run
  // (e.g. read-only commits skip promote/publish) are absent.
  std::vector<std::pair<TraceStage, uint64_t>> stages;
  std::string detail;  // free-form context ("objects_scanned=120 ...")
};

/// Bounded, thread-safe log of the most recent slow operations. The
/// threshold is a relaxed atomic so the commit path can poll it for one
/// load; 0 disables logging entirely.
class SlowOpLog {
 public:
  explicit SlowOpLog(size_t capacity = 128) : capacity_(capacity) {}

  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  void Add(SlowOp op);
  std::vector<SlowOp> Entries() const;  // oldest -> newest
  uint64_t total_logged() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// JSON array of entries, oldest first.
  std::string DumpJson() const;

 private:
  const size_t capacity_;
  std::atomic<uint64_t> threshold_ns_{0};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<SlowOp> ops_;  // under mu_
};

}  // namespace obs
}  // namespace kimdb

#endif  // KIMDB_OBS_TRACE_H_
