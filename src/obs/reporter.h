#ifndef KIMDB_OBS_REPORTER_H_
#define KIMDB_OBS_REPORTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace kimdb {
namespace obs {

struct MetricsReporterOptions {
  std::string path;  // JSONL output file, appended to
  std::chrono::milliseconds interval{1000};
};

/// Background time-series exporter: every `interval` it rotates the
/// registry's histogram windows and appends one JSON line to `path`
/// carrying the full snapshot plus the freshly closed window of every
/// windowed histogram (count/mean/p50/p95/p99/max). Lines are
/// self-describing -- the snapshot's monotonic `seq` and `wall_ms` stamps
/// ride along -- so a soak monitor can tail the file and plot "p99 over
/// time" without any state of its own.
class MetricsReporter {
 public:
  MetricsReporter(MetricsRegistry* registry, MetricsReporterOptions opts)
      : registry_(registry), opts_(std::move(opts)) {}
  ~MetricsReporter() { Stop(); }

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  /// Opens the output file and starts the ticker thread. Idempotent.
  Status Start();

  /// Final tick, then joins the thread and closes the file. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// Rotates windows and writes one line immediately (tests, shutdown
  /// flushes, and interval-free deterministic use). Works whether or not
  /// the background thread is running, but requires a successful Start().
  Status TickNow();

  uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return opts_.path; }

 private:
  void Loop();
  void WriteLineLocked();  // caller holds io_mu_

  MetricsRegistry* const registry_;
  const MetricsReporterOptions opts_;

  std::mutex io_mu_;         // serializes TickNow vs the ticker thread
  std::FILE* out_ = nullptr;  // under io_mu_ after Start
  std::atomic<uint64_t> lines_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // under stop_mu_
  std::thread thread_;
  bool started_ = false;
};

}  // namespace obs
}  // namespace kimdb

#endif  // KIMDB_OBS_REPORTER_H_
