#include "obs/reporter.h"

#include <cinttypes>

namespace kimdb {
namespace obs {

Status MetricsReporter::Start() {
  if (started_) return Status::OK();
  if (opts_.path.empty()) {
    return Status::InvalidArgument("metrics reporter: empty output path");
  }
  std::FILE* f = std::fopen(opts_.path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("metrics reporter: cannot open " + opts_.path);
  }
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    out_ = f;
  }
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return Status::OK();
}

void MetricsReporter::Stop() {
  if (started_) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
    started_ = false;
    // One final line so short runs still export their last window.
    std::lock_guard<std::mutex> lock(io_mu_);
    if (out_ != nullptr) WriteLineLocked();
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

Status MetricsReporter::TickNow() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (out_ == nullptr) {
    return Status::FailedPrecondition("metrics reporter not started");
  }
  WriteLineLocked();
  return Status::OK();
}

void MetricsReporter::Loop() {
  std::unique_lock<std::mutex> stop_lock(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(stop_lock, opts_.interval,
                          [this] { return stopping_; })) {
      break;
    }
    stop_lock.unlock();
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      if (out_ != nullptr) WriteLineLocked();
    }
    stop_lock.lock();
  }
}

void MetricsReporter::WriteLineLocked() {
  registry_->RotateWindows();
  MetricsSnapshot snap = registry_->TakeSnapshot();

  std::string line;
  line.reserve(4096);
  line += "{\"seq\":" + std::to_string(snap.seq);
  line += ",\"wall_ms\":" + std::to_string(snap.wall_ms);
  line += ",\"windows\":{";
  bool first = true;
  char buf[256];
  for (const std::string& name : registry_->WindowedNames()) {
    WindowedHistogram* wh = registry_->GetWindows(name);
    if (wh == nullptr) continue;
    HistogramWindow w = wh->Latest();
    if (!first) line += ',';
    first = false;
    line += '"';
    line += JsonEscape(name);
    line += "\":";
    std::snprintf(buf, sizeof(buf),
                  "{\"wseq\":%" PRIu64 ",\"wall_ms\":%" PRId64
                  ",\"count\":%" PRIu64 ",\"mean\":%.1f,\"p50\":%" PRIu64
                  ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64
                  "}",
                  w.seq, w.wall_ms, w.data.count, w.data.Mean(),
                  w.data.Percentile(0.50), w.data.Percentile(0.95),
                  w.data.Percentile(0.99), w.data.max);
    line += buf;
  }
  line += "},\"metrics\":";
  line += snap.ToJson();
  line += "}\n";

  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace kimdb
