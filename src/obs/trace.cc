#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/metrics.h"

namespace kimdb {
namespace obs {

namespace {

/// Process-wide registry of live recorders, keyed by their unique id. A
/// thread's TLS cache holds raw ring pointers; when the thread exits it
/// must hand each ring back to its recorder -- but only if that recorder
/// is still alive. The registry is the liveness oracle: recorders insert
/// themselves on construction and remove themselves on destruction, and a
/// TLS destructor only dereferences a recorder it found here, under the
/// same lock the destructor removes it with.
std::mutex g_recorders_mu;
std::map<uint64_t, FlightRecorder*>& Recorders() {
  static auto* m = new std::map<uint64_t, FlightRecorder*>();
  return *m;
}

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kWordsPerEvent = 4;

const char* KindLetter(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kBegin:
      return "B";
    case TraceEventKind::kEnd:
      return "E";
    case TraceEventKind::kInstant:
      return "I";
  }
  return "?";
}

}  // namespace

const char* TraceStageName(TraceStage s) {
  switch (s) {
    case TraceStage::kNone:
      return "none";
    case TraceStage::kCommit:
      return "commit";
    case TraceStage::kCommitClock:
      return "commit_clock";
    case TraceStage::kCommitTs:
      return "commit_ts";
    case TraceStage::kMvccPromote:
      return "mvcc_promote";
    case TraceStage::kWalAppend:
      return "wal_append";
    case TraceStage::kWalSyncWait:
      return "wal_sync_wait";
    case TraceStage::kMvccPublish:
      return "mvcc_publish";
    case TraceStage::kMvccPrune:
      return "mvcc_prune";
    case TraceStage::kCommitFail:
      return "commit_fail";
    case TraceStage::kTxnAbort:
      return "txn_abort";
    case TraceStage::kLatchWait:
      return "latch_wait";
    case TraceStage::kWalFsync:
      return "wal_fsync";
    case TraceStage::kQuery:
      return "query";
    case TraceStage::kExecOp:
      return "exec_op";
    case TraceStage::kSlowOp:
      return "slow_op";
    case TraceStage::kFaultTrip:
      return "fault_trip";
  }
  return "unknown";
}

/// One thread's event ring: `capacity` events of kWordsPerEvent atomic
/// words each, written only by the owning thread, read by any thread via
/// Snapshot(). `head` is the count of events ever written; slot layout is
/// event e at words [(e % capacity) * kWordsPerEvent, +kWordsPerEvent).
struct TraceThreadRing {
  explicit TraceThreadRing(size_t capacity, uint32_t tid)
      : capacity(capacity),
        tid(tid),
        words(new std::atomic<uint64_t>[capacity * kWordsPerEvent]()) {}

  const size_t capacity;
  uint32_t tid;
  std::unique_ptr<std::atomic<uint64_t>[]> words;
  std::atomic<uint64_t> head{0};  // events ever written (release on store)
};

/// Per-thread cache mapping recorder id -> that thread's ring. The last
/// lookup is memoized so the hot path is one compare. On thread exit the
/// destructor retires every cached ring back to its (still live)
/// recorder so the ring can be reused by a later thread instead of
/// leaking one ring per short-lived committer.
struct TraceTls {
  struct Entry {
    uint64_t recorder_id;
    TraceThreadRing* ring;
  };

  uint64_t last_id = 0;
  TraceThreadRing* last_ring = nullptr;
  std::vector<Entry> entries;

  ~TraceTls() {
    std::lock_guard<std::mutex> lock(g_recorders_mu);
    for (const auto& e : entries) {
      auto it = Recorders().find(e.recorder_id);
      if (it != Recorders().end()) it->second->RetireRing(e.ring);
    }
  }
};

namespace {
TraceTls& Tls() {
  thread_local TraceTls tls;
  return tls;
}
}  // namespace

FlightRecorder::FlightRecorder(size_t ring_events)
    : ring_capacity_(std::bit_ceil(std::max<size_t>(ring_events, 16))),
      id_(NextRecorderId()),
      start_(std::chrono::steady_clock::now()),
      wall_anchor_ms_(WallNowMs()) {
  std::lock_guard<std::mutex> lock(g_recorders_mu);
  Recorders().emplace(id_, this);
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard<std::mutex> lock(g_recorders_mu);
  Recorders().erase(id_);
  // Rings die with rings_; stale TLS entries keyed by id_ can no longer
  // resolve this recorder, so the dangling ring pointers are never used.
}

uint64_t FlightRecorder::NowNs() const {
  auto d = std::chrono::steady_clock::now() - start_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

TraceThreadRing* FlightRecorder::RingForThisThread() {
  TraceTls& tls = Tls();
  if (tls.last_id == id_) return tls.last_ring;
  for (const auto& e : tls.entries) {
    if (e.recorder_id == id_) {
      tls.last_id = id_;
      tls.last_ring = e.ring;
      return e.ring;
    }
  }
  TraceThreadRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (!free_rings_.empty()) {
      // Reuse keeps the retired owner's head and events: they are real
      // history, and head doubles as the recorded/dropped accounting. The
      // tid stays too -- it names the ring, not the OS thread.
      ring = free_rings_.back();
      free_rings_.pop_back();
    } else {
      rings_.push_back(std::make_unique<TraceThreadRing>(
          ring_capacity_, static_cast<uint32_t>(rings_.size())));
      ring = rings_.back().get();
    }
  }
  tls.entries.push_back({id_, ring});
  tls.last_id = id_;
  tls.last_ring = ring;
  return ring;
}

void FlightRecorder::RetireRing(TraceThreadRing* ring) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  free_rings_.push_back(ring);
}

void FlightRecorder::RecordSlow(TraceStage stage, TraceEventKind kind,
                                uint64_t txn, uint64_t arg) {
  TraceThreadRing* ring = RingForThisThread();
  uint64_t e = ring->head.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w =
      ring->words.get() + (e & (ring->capacity - 1)) * kWordsPerEvent;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  w[0].store(NowNs(), kRelaxed);
  w[1].store(txn, kRelaxed);
  w[2].store(arg, kRelaxed);
  w[3].store(static_cast<uint64_t>(stage) |
                 (static_cast<uint64_t>(kind) << 8) |
                 (static_cast<uint64_t>(ring->tid) << 32),
             kRelaxed);
  // The release pairs with Snapshot's acquire load of head: an observed
  // head covers fully written slots (modulo the one slot a concurrent
  // writer may be overwriting, which Snapshot discards by index margin).
  ring->head.store(e + 1, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::Snapshot(size_t max_events) const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& ring : rings_) {
      uint64_t h = ring->head.load(std::memory_order_acquire);
      uint64_t n = std::min<uint64_t>(h, ring->capacity);
      std::vector<TraceEvent> local;
      local.reserve(n);
      std::vector<uint64_t> idx;
      idx.reserve(n);
      constexpr auto kRelaxed = std::memory_order_relaxed;
      for (uint64_t e = h - n; e < h; ++e) {
        const std::atomic<uint64_t>* w =
            ring->words.get() + (e & (ring->capacity - 1)) * kWordsPerEvent;
        TraceEvent ev;
        ev.ts_ns = w[0].load(kRelaxed);
        ev.txn = w[1].load(kRelaxed);
        ev.arg = w[2].load(kRelaxed);
        uint64_t packed = w[3].load(kRelaxed);
        ev.stage = static_cast<TraceStage>(packed & 0xff);
        ev.kind = static_cast<TraceEventKind>((packed >> 8) & 0xff);
        ev.tid = static_cast<uint32_t>(packed >> 32);
        local.push_back(ev);
        idx.push_back(e);
      }
      // Any slot the writer overwrote (or may be mid-overwrite on, for
      // the next event h2) while we read is torn: discard events whose
      // index the re-read head has lapped.
      uint64_t h2 = ring->head.load(std::memory_order_acquire);
      uint64_t floor =
          h2 >= ring->capacity ? h2 - ring->capacity + 1 : 0;
      for (size_t i = 0; i < local.size(); ++i) {
        if (idx[i] >= floor) out.push_back(local[i]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  if (max_events > 0 && out.size() > max_events) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    uint64_t h = ring->head.load(std::memory_order_relaxed);
    if (h > ring->capacity) total += h - ring->capacity;
  }
  return total;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return rings_.size();
}

std::string FlightRecorder::DumpJson(size_t max_events) const {
  std::vector<TraceEvent> events = Snapshot(max_events);
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"anchor_wall_ms\":%" PRId64 ",\"ring_capacity\":%zu"
                ",\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"events\":[",
                wall_anchor_ms_, ring_capacity_, recorded(), dropped());
  out += buf;
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ts_ns\":%" PRIu64 ",\"tid\":%u,\"txn\":%" PRIu64
                  ",\"stage\":\"%s\",\"kind\":\"%s\",\"arg\":%" PRIu64 "}",
                  ev.ts_ns, ev.tid, ev.txn, TraceStageName(ev.stage),
                  KindLetter(ev.kind), ev.arg);
    out += buf;
  }
  out += "]}";
  return out;
}

void SlowOpLog::Add(SlowOp op) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ops_.push_back(std::move(op));
  while (ops_.size() > capacity_) ops_.pop_front();
}

std::vector<SlowOp> SlowOpLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowOp>(ops_.begin(), ops_.end());
}

std::string SlowOpLog::DumpJson() const {
  std::vector<SlowOp> ops = Entries();
  std::string out = "[";
  char buf[192];
  bool first = true;
  for (const SlowOp& op : ops) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"wall_ms\":%" PRId64 ",\"kind\":\"%s\",\"txn\":%" PRIu64
                  ",\"total_ns\":%" PRIu64 ",\"stages\":{",
                  op.wall_ms, op.kind.c_str(), op.txn, op.total_ns);
    out += buf;
    bool sfirst = true;
    for (const auto& [stage, ns] : op.stages) {
      if (!sfirst) out += ',';
      sfirst = false;
      std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                    TraceStageName(stage), ns);
      out += buf;
    }
    out += "},\"detail\":\"";
    out += JsonEscape(op.detail);
    out += "\"}";
  }
  out += ']';
  return out;
}

}  // namespace obs
}  // namespace kimdb
