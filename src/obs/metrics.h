#ifndef KIMDB_OBS_METRICS_H_
#define KIMDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kimdb {
namespace obs {

/// Process-wide observability primitives (DESIGN.md §10). Every KIMDB
/// subsystem accounts its work against a MetricsRegistry so that a single
/// Snapshot()/Diff() answers "where did the time and I/O of this run go" --
/// the per-subsystem work counters the OODB benchmark literature (OO1,
/// OCB) demands next to raw wall-clock numbers.
///
/// Naming scheme: `<subsystem>.<metric>`, lower_snake_case, with latency
/// histograms suffixed `_ns` (recorded in nanoseconds). Examples:
/// `bufferpool.hits`, `wal.fsync_ns`, `lock.wait_ns`, `txn.committed`,
/// `query.exec_ns`, `recovery.redo_ns`.

/// Monotonic event count. Record path: one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time level (resident objects, recovery phase duration).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Plain-data histogram readout: bucket i counts recorded values v with
/// std::bit_width(v) == i, i.e. bucket 0 holds {0} and bucket i>=1 holds
/// [2^(i-1), 2^i). Log-scale buckets bound the percentile estimate's
/// relative error by 2x, which is enough to tell a 50us fsync from a 5ms
/// one without a hot-path cost beyond three relaxed fetch_adds.
struct HistogramData {
  static constexpr size_t kBuckets = 65;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  /// Upper bound of the bucket holding the p-quantile observation
  /// (p in [0,1]). Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Concurrent log-scale histogram; all recorders may race freely.
class Histogram {
 public:
  void Record(uint64_t v) {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    buckets_[std::bit_width(v)].fetch_add(1, kRelaxed);
    sum_.fetch_add(v, kRelaxed);
    count_.fetch_add(1, kRelaxed);
    uint64_t cur = max_.load(kRelaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, kRelaxed)) {
    }
  }

  HistogramData data() const {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    HistogramData out;
    out.count = count_.load(kRelaxed);
    out.sum = sum_.load(kRelaxed);
    out.max = max_.load(kRelaxed);
    for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
      out.buckets[i] = buckets_[i].load(kRelaxed);
    }
    return out;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, HistogramData::kBuckets> buckets_{};
};

/// RAII latency guard: records elapsed nanoseconds into `h` on destruction
/// (or at an explicit Stop()). A null histogram makes the guard free, so
/// call sites need no "is observability attached" branching of their own.
class Timer {
 public:
  explicit Timer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { Stop(); }

  /// Records now and disarms; later Stop()/destruction is a no-op.
  void Stop() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
    h_ = nullptr;
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Metric names are identifier-like in
/// practice, but exposition formats must not trust that.
std::string JsonEscape(std::string_view s);

/// One closed window of a WindowedHistogram: the work recorded between
/// two consecutive Rotate() calls, as a self-contained HistogramData
/// delta stamped with the rotation sequence number and wall-clock close
/// time.
struct HistogramWindow {
  uint64_t seq = 0;     // rotation sequence (1 = first closed window)
  int64_t wall_ms = 0;  // wall-clock ms (unix epoch) when the window closed
  HistogramData data;   // values recorded within the window only
};

/// Fixed-interval rotating view over a cumulative Histogram: Rotate()
/// closes the current window by diffing the base histogram against the
/// reading taken at the previous rotation, so per-window p50/p95/p99 are
/// queryable without touching the record hot path at all. Rotation and
/// reads are internally synchronized; the reporter thread rotates, any
/// thread may read.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(const Histogram* base, size_t max_windows = 64)
      : base_(base), max_windows_(max_windows) {}

  /// Closes the current window at wall-clock time `wall_ms`, appending it
  /// to the retained window list (oldest evicted past max_windows).
  void Rotate(int64_t wall_ms);

  /// Retained closed windows, oldest first.
  std::vector<HistogramWindow> Windows() const;
  /// The most recently closed window; an empty zero-seq window if none.
  HistogramWindow Latest() const;

 private:
  const Histogram* base_;
  const size_t max_windows_;
  mutable std::mutex mu_;
  HistogramData last_;               // base reading at the last rotation
  uint64_t seq_ = 0;                 // windows closed so far
  std::deque<HistogramWindow> windows_;  // under mu_
};

/// One metric's value at snapshot time.
struct MetricValue {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  int64_t num = 0;     // counter / gauge reading
  HistogramData hist;  // kHistogram only
};

/// A consistent-enough point-in-time reading of every registered metric,
/// ordered by name (stable text/JSON output, diffable).
struct MetricsSnapshot {
  std::map<std::string, MetricValue> metrics;
  /// Monotonic per-registry sequence number and wall-clock stamp assigned
  /// at TakeSnapshot time, so exported snapshots (reporter JSONL lines)
  /// are self-describing. Emitted by ToText/ToJson as the synthetic
  /// `obs.seq` / `obs.wall_ms` metrics; a Diff keeps the `after` stamp.
  uint64_t seq = 0;
  int64_t wall_ms = 0;

  /// Counter/gauge value (or histogram count) by name; `def` if absent.
  int64_t Value(const std::string& name, int64_t def = 0) const;
  /// Histogram readout by name; empty data if absent or not a histogram.
  HistogramData Hist(const std::string& name) const;

  /// One `name value` / `name count=.. p50=..` line per metric.
  std::string ToText() const;
  /// Flat JSON object: counters/gauges as numbers, histograms as
  /// {"count","sum","mean","p50","p95","p99","max"}.
  std::string ToJson() const;
};

/// Named metric registry. Get* registers on first use and returns a stable
/// pointer call sites cache, so the hot path never touches the registry
/// lock or hashes a name. Collectors adapt subsystems that already keep
/// their own counters (BufferPoolStats, LockManagerStats, ...): each is a
/// named callback read at snapshot time, costing the subsystem nothing
/// between snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a counter-kind metric whose value is pulled from `fn` at
  /// snapshot time. `fn` must be thread-safe and must outlive the registry
  /// user's last TakeSnapshot call.
  void RegisterCollector(std::string name, std::function<uint64_t()> fn);

  /// Layers a rotating-window view over the named histogram (registering
  /// the histogram on first use, like GetHistogram). Idempotent; returns
  /// a stable pointer.
  WindowedHistogram* EnableWindows(const std::string& name,
                                   size_t max_windows = 64);
  /// The windowed view for `name`, or nullptr when none was enabled.
  WindowedHistogram* GetWindows(const std::string& name) const;
  /// Closes the current window of every windowed histogram at one common
  /// wall-clock stamp (the reporter's tick body).
  void RotateWindows();
  /// Names with a windowed view enabled, sorted.
  std::vector<std::string> WindowedNames() const;

  MetricsSnapshot TakeSnapshot() const;

  /// Work done between two snapshots: counters and histograms subtract
  /// (clamped at zero); gauges report the `after` level; a histogram
  /// diff's `max` is the `after` max (maxima do not subtract). Metrics
  /// only present in `after` diff against zero.
  static MetricsSnapshot Diff(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windows_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> collectors_;
  mutable std::atomic<uint64_t> snapshot_seq_{0};
};

}  // namespace obs
}  // namespace kimdb

#endif  // KIMDB_OBS_METRICS_H_
