#include "catalog/catalog.h"

#include <algorithm>
#include <unordered_set>

namespace kimdb {

Catalog::Catalog() {
  ClassDef root;
  root.id = kRootClassId;
  root.name = "Object";
  classes_[kRootClassId] = std::move(root);
  by_name_["Object"] = kRootClassId;
}

Catalog::Catalog(Catalog&& other) noexcept { *this = std::move(other); }

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  classes_ = std::move(other.classes_);
  by_name_ = std::move(other.by_name_);
  next_class_id_ = other.next_class_id_;
  next_attr_id_ = other.next_attr_id_;
  schema_version_.store(other.schema_version_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  // Drop (rather than move) the resolved views; they are rebuilt lazily.
  resolved_cache_.clear();
  other.resolved_cache_.clear();
  return *this;
}

Result<ClassId> Catalog::CreateClass(
    std::string_view name, const std::vector<ClassId>& supers,
    const std::vector<AttributeSpec>& attrs,
    const std::vector<MethodSpec>& methods) {
  std::string name_str(name);
  if (name_str.empty()) return Status::InvalidArgument("empty class name");
  if (by_name_.count(name_str)) {
    return Status::AlreadyExists("class '" + name_str + "' exists");
  }
  for (ClassId s : supers) {
    if (!classes_.count(s)) {
      return Status::NotFound("superclass #" + std::to_string(s) +
                              " does not exist");
    }
  }
  {
    std::unordered_set<std::string> seen;
    for (const auto& a : attrs) {
      if (a.name.empty()) return Status::InvalidArgument("empty attr name");
      if (!seen.insert(a.name).second) {
        return Status::InvalidArgument("duplicate attribute '" + a.name + "'");
      }
      if (a.domain.kind == Domain::Kind::kRef &&
          !classes_.count(a.domain.ref_class)) {
        return Status::NotFound("domain class of '" + a.name +
                                "' does not exist");
      }
    }
    seen.clear();
    for (const auto& m : methods) {
      if (m.name.empty()) return Status::InvalidArgument("empty method name");
      if (!seen.insert(m.name).second) {
        return Status::InvalidArgument("duplicate method '" + m.name + "'");
      }
    }
  }

  ClassDef def;
  def.id = next_class_id_++;
  def.name = name_str;
  def.supers = supers.empty() ? std::vector<ClassId>{kRootClassId} : supers;
  // Deduplicate supers preserving order.
  {
    std::unordered_set<ClassId> seen;
    std::vector<ClassId> uniq;
    for (ClassId s : def.supers) {
      if (seen.insert(s).second) uniq.push_back(s);
    }
    def.supers = std::move(uniq);
  }
  for (const auto& a : attrs) {
    AttributeDef ad;
    ad.id = next_attr_id_++;
    ad.name = a.name;
    ad.domain = a.domain;
    ad.default_value = a.default_value;
    ad.defined_in = def.id;
    def.own_attrs.push_back(std::move(ad));
  }
  for (const auto& m : methods) {
    def.own_methods.push_back(MethodDef{m.name, m.arity, def.id});
  }
  ClassId id = def.id;
  by_name_[name_str] = id;
  classes_[id] = std::move(def);
  Bump();
  return id;
}

Status Catalog::DropClass(ClassId cls) {
  if (cls == kRootClassId) {
    return Status::InvalidArgument("cannot drop the root class");
  }
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  const std::vector<ClassId> dead_supers = it->second.supers;

  // Re-parent direct subclasses: splice the dropped class's supers into the
  // position the dropped class occupied (BANE87 semantics).
  for (auto& [id, def] : classes_) {
    auto pos = std::find(def.supers.begin(), def.supers.end(), cls);
    if (pos == def.supers.end()) continue;
    size_t idx = static_cast<size_t>(pos - def.supers.begin());
    def.supers.erase(pos);
    std::unordered_set<ClassId> present(def.supers.begin(), def.supers.end());
    size_t insert_at = idx;
    for (ClassId s : dead_supers) {
      if (present.insert(s).second) {
        def.supers.insert(def.supers.begin() + insert_at, s);
        ++insert_at;
      }
    }
    if (def.supers.empty()) def.supers.push_back(kRootClassId);
  }
  // Attribute domains that referenced the dropped class fall back to the
  // root class (accept any object).
  for (auto& [id, def] : classes_) {
    for (auto& a : def.own_attrs) {
      if (a.domain.kind == Domain::Kind::kRef && a.domain.ref_class == cls) {
        a.domain.ref_class = kRootClassId;
      }
    }
  }
  by_name_.erase(it->second.name);
  classes_.erase(it);
  Bump();
  return Status::OK();
}

Result<ClassId> Catalog::FindClass(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("class '" + std::string(name) + "' not found");
  }
  return it->second;
}

Result<const ClassDef*> Catalog::GetClass(ClassId cls) const {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  return &it->second;
}

Result<ClassDef*> Catalog::GetClassMutable(ClassId cls) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  return &it->second;
}

std::vector<ClassId> Catalog::AllClasses() const {
  std::vector<ClassId> out;
  for (const auto& [id, def] : classes_) {
    if (id != kRootClassId) out.push_back(id);
  }
  return out;
}

bool Catalog::IsSubclassOf(ClassId sub, ClassId super) const {
  if (sub == super) return true;
  if (super == kRootClassId) return classes_.count(sub) > 0;
  for (ClassId c : Linearize(sub)) {
    if (c == super) return true;
  }
  return false;
}

std::vector<ClassId> Catalog::Subtree(ClassId cls) const {
  // BFS downward over the (inverted) superclass edges.
  std::vector<ClassId> out;
  std::unordered_set<ClassId> seen;
  std::vector<ClassId> frontier{cls};
  seen.insert(cls);
  while (!frontier.empty()) {
    std::vector<ClassId> next;
    for (ClassId c : frontier) {
      out.push_back(c);
      for (const auto& [id, def] : classes_) {
        if (seen.count(id)) continue;
        if (std::find(def.supers.begin(), def.supers.end(), c) !=
            def.supers.end()) {
          seen.insert(id);
          next.push_back(id);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

const Catalog::Resolved& Catalog::ResolvedFor(ClassId cls) const {
  // Concurrent readers (parallel scan workers, shared-lock point reads)
  // race to fill the view; the leaf mutex makes the find-or-build atomic.
  // Map references are node-stable, so the returned reference outlives the
  // lock (entries die only on schema mutation, which requires quiescence).
  std::lock_guard<std::mutex> lock(resolved_mu_);
  auto it = resolved_cache_.find(cls);
  if (it != resolved_cache_.end()) return it->second;

  Resolved r;
  // Linearization: DFS from cls following supers in precedence order,
  // recording each class the first time it is reached.
  std::unordered_set<ClassId> seen;
  std::vector<ClassId> stack{cls};
  while (!stack.empty()) {
    ClassId c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    r.linearization.push_back(c);
    auto cit = classes_.find(c);
    if (cit == classes_.end()) continue;
    // Push supers in reverse so the leftmost is visited first.
    const auto& sups = cit->second.supers;
    for (auto s = sups.rbegin(); s != sups.rend(); ++s) {
      if (!seen.count(*s)) stack.push_back(*s);
    }
  }
  // Effective attributes: first definition of each name along the
  // linearization wins (own attrs shadow inherited, leftmost super wins).
  std::unordered_set<std::string> names;
  for (ClassId c : r.linearization) {
    auto cit = classes_.find(c);
    if (cit == classes_.end()) continue;
    for (const auto& a : cit->second.own_attrs) {
      if (names.insert(a.name).second) r.schema.attrs.push_back(&a);
    }
  }
  r.schema.by_id.reserve(r.schema.attrs.size());
  for (const AttributeDef* a : r.schema.attrs) {
    r.schema.by_id.emplace(a->id, a);
    if (!a->default_value.is_null()) r.schema.defaulted.push_back(a);
  }
  return resolved_cache_.emplace(cls, std::move(r)).first->second;
}

std::vector<ClassId> Catalog::Linearize(ClassId cls) const {
  return ResolvedFor(cls).linearization;
}

Result<std::vector<const AttributeDef*>> Catalog::EffectiveAttrs(
    ClassId cls) const {
  if (!classes_.count(cls)) return Status::NotFound("no such class");
  return ResolvedFor(cls).schema.attrs;
}

Result<const Catalog::EffectiveSchema*> Catalog::EffectiveSchemaFor(
    ClassId cls) const {
  if (!classes_.count(cls)) return Status::NotFound("no such class");
  return &ResolvedFor(cls).schema;
}

Result<const AttributeDef*> Catalog::ResolveAttr(
    ClassId cls, std::string_view name) const {
  if (!classes_.count(cls)) return Status::NotFound("no such class");
  for (const AttributeDef* a : ResolvedFor(cls).schema.attrs) {
    if (a->name == name) return a;
  }
  return Status::NotFound("attribute '" + std::string(name) +
                          "' not found on class");
}

Result<const MethodDef*> Catalog::ResolveMethod(
    ClassId cls, std::string_view name) const {
  if (!classes_.count(cls)) return Status::NotFound("no such class");
  for (ClassId c : ResolvedFor(cls).linearization) {
    auto cit = classes_.find(c);
    if (cit == classes_.end()) continue;
    for (const auto& m : cit->second.own_methods) {
      if (m.name == name) return &m;
    }
  }
  return Status::NotFound("method '" + std::string(name) +
                          "' undefined along the class hierarchy");
}

Result<const AttributeDef*> Catalog::GetAttrById(AttrId id) const {
  for (const auto& [cid, def] : classes_) {
    for (const auto& a : def.own_attrs) {
      if (a.id == id) return &a;
    }
  }
  return Status::NotFound("no attribute with id " + std::to_string(id));
}

Status Catalog::CheckValue(const Domain& d, const Value& v) const {
  if (v.is_null()) return Status::OK();
  if (d.is_set) {
    if (!v.is_collection()) {
      return Status::InvalidArgument("set-valued attribute requires a "
                                     "set/list value");
    }
    Domain elem = d;
    elem.is_set = false;
    for (const Value& e : v.elements()) {
      KIMDB_RETURN_IF_ERROR(CheckValue(elem, e));
    }
    return Status::OK();
  }
  switch (d.kind) {
    case Domain::Kind::kAny:
      return Status::OK();
    case Domain::Kind::kInt:
      if (v.kind() != Value::Kind::kInt) {
        return Status::InvalidArgument("expected integer");
      }
      return Status::OK();
    case Domain::Kind::kReal:
      if (v.kind() != Value::Kind::kReal && v.kind() != Value::Kind::kInt) {
        return Status::InvalidArgument("expected real");
      }
      return Status::OK();
    case Domain::Kind::kBool:
      if (v.kind() != Value::Kind::kBool) {
        return Status::InvalidArgument("expected boolean");
      }
      return Status::OK();
    case Domain::Kind::kString:
      if (v.kind() != Value::Kind::kString) {
        return Status::InvalidArgument("expected string");
      }
      return Status::OK();
    case Domain::Kind::kRef: {
      if (v.kind() != Value::Kind::kRef) {
        return Status::InvalidArgument("expected object reference");
      }
      // A class C used as a domain stands for C and all its subclasses
      // (paper §3.2).
      if (!IsSubclassOf(v.as_ref().class_id(), d.ref_class)) {
        return Status::InvalidArgument(
            "reference not an instance of the domain class or a subclass");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable domain kind");
}

Status Catalog::CheckAcyclic(ClassId cls, ClassId new_super) const {
  // Adding cls -> new_super creates a cycle iff cls is reachable upward
  // from new_super.
  for (ClassId c : Linearize(new_super)) {
    if (c == cls) {
      return Status::InvalidArgument("superclass edge would create a cycle");
    }
  }
  return Status::OK();
}

Status Catalog::AddAttribute(ClassId cls, const AttributeSpec& spec) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  if (spec.name.empty()) return Status::InvalidArgument("empty attr name");
  for (const auto& a : it->second.own_attrs) {
    if (a.name == spec.name) {
      return Status::AlreadyExists("attribute '" + spec.name +
                                   "' already defined on class");
    }
  }
  if (spec.domain.kind == Domain::Kind::kRef &&
      !classes_.count(spec.domain.ref_class)) {
    return Status::NotFound("domain class does not exist");
  }
  KIMDB_RETURN_IF_ERROR(CheckValue(spec.domain, spec.default_value));
  AttributeDef ad;
  ad.id = next_attr_id_++;
  ad.name = spec.name;
  ad.domain = spec.domain;
  ad.default_value = spec.default_value;
  ad.defined_in = cls;
  it->second.own_attrs.push_back(std::move(ad));
  Bump();
  return Status::OK();
}

Status Catalog::DropAttribute(ClassId cls, std::string_view name) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  auto& attrs = it->second.own_attrs;
  auto pos = std::find_if(attrs.begin(), attrs.end(),
                          [&](const AttributeDef& a) { return a.name == name; });
  if (pos == attrs.end()) {
    // Distinguish "inherited" (cannot drop here) from "absent".
    Result<const AttributeDef*> inh = ResolveAttr(cls, name);
    if (inh.ok()) {
      return Status::InvalidArgument(
          "attribute is inherited; drop it on its defining class");
    }
    return Status::NotFound("no such attribute");
  }
  attrs.erase(pos);
  Bump();
  return Status::OK();
}

Status Catalog::RenameAttribute(ClassId cls, std::string_view from,
                                std::string_view to) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  if (to.empty()) return Status::InvalidArgument("empty attr name");
  for (const auto& a : it->second.own_attrs) {
    if (a.name == to) return Status::AlreadyExists("target name in use");
  }
  for (auto& a : it->second.own_attrs) {
    if (a.name == from) {
      a.name = std::string(to);
      Bump();
      return Status::OK();
    }
  }
  return Status::NotFound("no such attribute");
}

Status Catalog::ChangeAttributeDefault(ClassId cls, std::string_view name,
                                       Value default_value) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  for (auto& a : it->second.own_attrs) {
    if (a.name == name) {
      KIMDB_RETURN_IF_ERROR(CheckValue(a.domain, default_value));
      a.default_value = std::move(default_value);
      Bump();
      return Status::OK();
    }
  }
  return Status::NotFound("no such attribute");
}

Status Catalog::RenameClass(ClassId cls, std::string_view new_name) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  if (new_name.empty()) return Status::InvalidArgument("empty class name");
  if (by_name_.count(std::string(new_name))) {
    return Status::AlreadyExists("class name in use");
  }
  by_name_.erase(it->second.name);
  it->second.name = std::string(new_name);
  by_name_[it->second.name] = cls;
  Bump();
  return Status::OK();
}

Status Catalog::AddMethod(ClassId cls, const MethodSpec& spec) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  for (const auto& m : it->second.own_methods) {
    if (m.name == spec.name) {
      return Status::AlreadyExists("method already defined on class");
    }
  }
  it->second.own_methods.push_back(MethodDef{spec.name, spec.arity, cls});
  Bump();
  return Status::OK();
}

Status Catalog::DropMethod(ClassId cls, std::string_view name) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  auto& ms = it->second.own_methods;
  auto pos = std::find_if(ms.begin(), ms.end(),
                          [&](const MethodDef& m) { return m.name == name; });
  if (pos == ms.end()) return Status::NotFound("no such method");
  ms.erase(pos);
  Bump();
  return Status::OK();
}

Status Catalog::AddSuperclass(ClassId cls, ClassId super) {
  if (cls == super) return Status::InvalidArgument("class cannot be its own "
                                                   "superclass");
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  if (!classes_.count(super)) return Status::NotFound("no such superclass");
  if (std::find(it->second.supers.begin(), it->second.supers.end(), super) !=
      it->second.supers.end()) {
    return Status::AlreadyExists("already a superclass");
  }
  KIMDB_RETURN_IF_ERROR(CheckAcyclic(cls, super));
  it->second.supers.push_back(super);
  Bump();
  return Status::OK();
}

Status Catalog::RemoveSuperclass(ClassId cls, ClassId super) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no such class");
  auto& sups = it->second.supers;
  auto pos = std::find(sups.begin(), sups.end(), super);
  if (pos == sups.end()) return Status::NotFound("not a superclass");
  sups.erase(pos);
  if (sups.empty()) sups.push_back(kRootClassId);
  Bump();
  return Status::OK();
}

void Catalog::EncodeTo(std::string* dst) const {
  PutFixed32(dst, next_class_id_);
  PutFixed32(dst, next_attr_id_);
  PutVarint64(dst, schema_version_);
  PutVarint32(dst, static_cast<uint32_t>(classes_.size()));
  for (const auto& [id, def] : classes_) def.EncodeTo(dst);
}

Result<Catalog> Catalog::Decode(std::string_view bytes) {
  Decoder dec(bytes);
  Catalog cat;
  cat.classes_.clear();
  cat.by_name_.clear();
  KIMDB_ASSIGN_OR_RETURN(cat.next_class_id_, dec.ReadFixed32());
  KIMDB_ASSIGN_OR_RETURN(cat.next_attr_id_, dec.ReadFixed32());
  KIMDB_ASSIGN_OR_RETURN(cat.schema_version_, dec.ReadVarint64());
  KIMDB_ASSIGN_OR_RETURN(uint32_t n, dec.ReadVarint32());
  for (uint32_t i = 0; i < n; ++i) {
    KIMDB_ASSIGN_OR_RETURN(ClassDef def, ClassDef::DecodeFrom(&dec));
    cat.by_name_[def.name] = def.id;
    cat.classes_[def.id] = std::move(def);
  }
  if (!cat.classes_.count(kRootClassId)) {
    return Status::Corruption("catalog missing root class");
  }
  return cat;
}

}  // namespace kimdb
