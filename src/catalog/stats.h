#ifndef KIMDB_CATALOG_STATS_H_
#define KIMDB_CATALOG_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/value.h"
#include "util/coding.h"
#include "util/result.h"

namespace kimdb {

/// A small equi-depth histogram over an index's key domain. Bucket `i`
/// covers keys in `(bounds[i-1], bounds[i]]` (bucket 0 is open below), so
/// `counts[i] / total_entries` is the fraction of index entries whose key
/// falls in that bucket. Built by IndexManager::BuildHistogram from one
/// B+-tree leaf walk at `analyze` time.
struct EquiDepthHistogram {
  uint64_t total_entries = 0;
  uint64_t distinct_keys = 0;
  std::vector<Value> bounds;  // inclusive upper bound per bucket
  std::vector<uint64_t> counts;

  bool empty() const { return counts.empty() || total_entries == 0; }

  /// Estimated fraction of entries with key == `key`: the per-distinct-key
  /// average, capped by the containing bucket's fraction.
  double SelectivityEq(const Value& key) const;

  /// Estimated fraction of entries in [lo, hi] (unset bound = open end).
  /// Fully-covered buckets contribute whole; boundary buckets contribute
  /// half (the classic coarse-histogram compromise).
  double SelectivityRange(const std::optional<Value>& lo, bool lo_inclusive,
                          const std::optional<Value>& hi,
                          bool hi_inclusive) const;

  void EncodeTo(std::string* dst) const;
  static Result<EquiDepthHistogram> DecodeFrom(Decoder* dec);
};

/// Analyze-time snapshot of one class's cardinality profile plus the
/// mutation drift accumulated since. `extent_pages` / `live_objects` are
/// captured when `analyze <class>` runs so the planner never walks a page
/// chain; drift is tracked so stale snapshots demote the planner back to
/// rule-based choice.
struct ClassStats {
  uint64_t live_objects = 0;   // at analyze time
  uint64_t extent_pages = 0;   // at analyze time
  uint64_t mutations_since_analyze = 0;
  bool analyzed = false;
  /// Keyed by the joined attribute path of the index ("Weight",
  /// "Manufacturer.Location").
  std::map<std::string, EquiDepthHistogram> path_hists;

  /// A snapshot is trusted while drift stays under a quarter of the
  /// analyzed population (with a small absolute floor for tiny extents).
  bool Fresh() const {
    return analyzed &&
           mutations_since_analyze <= std::max<uint64_t>(64, live_objects / 4);
  }

  void EncodeTo(std::string* dst) const;
  static Result<ClassStats> DecodeFrom(Decoder* dec);
};

/// Per-class statistics registry: analyze-time snapshots plus a lock-free
/// mutation drift counter per class (bumped from the ObjectStore listener
/// on every insert/update/delete, so it must not serialize writers).
/// Persisted with the catalog in the meta record.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Notes one mutation against `cls` (insert, update, or delete).
  void RecordMutation(ClassId cls);

  /// Installs a fresh analyze snapshot for `cls`, resetting its drift.
  void Install(ClassId cls, ClassStats stats);

  /// Returns a copy of the snapshot with `mutations_since_analyze` filled
  /// from the live drift counter; nullopt if the class was never analyzed
  /// (and has seen no mutations).
  std::optional<ClassStats> Get(ClassId cls) const;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Decoder* dec);  // replaces current contents

 private:
  struct Entry {
    std::atomic<uint64_t> mutations{0};
    ClassStats snapshot;  // guarded by mu_
  };

  // Pointer-stable entries: RecordMutation only takes the shared lock once
  // a class has an entry.
  mutable std::shared_mutex mu_;
  std::unordered_map<ClassId, std::unique_ptr<Entry>> entries_;
};

}  // namespace kimdb

#endif  // KIMDB_CATALOG_STATS_H_
