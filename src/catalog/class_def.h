#ifndef KIMDB_CATALOG_CLASS_DEF_H_
#define KIMDB_CATALOG_CLASS_DEF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/object.h"
#include "model/oid.h"
#include "model/value.h"
#include "storage/page.h"
#include "util/coding.h"
#include "util/result.h"

namespace kimdb {

/// The domain (type) of an attribute (paper §3.1 point 4): a primitive
/// class, or any general class (by reference), optionally set-valued.
/// `kAny` is the root class used as a domain (accepts any value).
struct Domain {
  enum class Kind : uint8_t {
    kAny = 0,
    kInt = 1,
    kReal = 2,
    kBool = 3,
    kString = 4,
    kRef = 5,
  };

  Kind kind = Kind::kAny;
  /// For kRef: the domain class. A value of this attribute may be an
  /// instance of the domain class or any of its subclasses (paper §3.2:
  /// "the attribute may take on as its values objects from the class
  /// Company and any direct or indirect subclass").
  ClassId ref_class = kInvalidClassId;
  /// Set-valued attribute (paper §3.1 point 2).
  bool is_set = false;

  static Domain Any() { return Domain{}; }
  static Domain Int() { return Domain{Kind::kInt, kInvalidClassId, false}; }
  static Domain Real() { return Domain{Kind::kReal, kInvalidClassId, false}; }
  static Domain Bool() { return Domain{Kind::kBool, kInvalidClassId, false}; }
  static Domain String() {
    return Domain{Kind::kString, kInvalidClassId, false};
  }
  static Domain Ref(ClassId cls) { return Domain{Kind::kRef, cls, false}; }
  static Domain SetOf(Domain elem) {
    elem.is_set = true;
    return elem;
  }

  bool operator==(const Domain&) const = default;

  void EncodeTo(std::string* dst) const;
  static Result<Domain> DecodeFrom(Decoder* dec);
  std::string ToString() const;
};

/// An attribute as defined on (or inherited into) a class.
struct AttributeDef {
  AttrId id = kInvalidAttrId;   // stable, catalog-global
  std::string name;
  Domain domain;
  Value default_value;          // used for lazily-added attributes
  ClassId defined_in = kInvalidClassId;

  void EncodeTo(std::string* dst) const;
  static Result<AttributeDef> DecodeFrom(Decoder* dec);
};

/// A method *signature*. Method bodies are native C++ functions registered
/// at runtime in a MethodRegistry (the catalog persists only signatures, as
/// ORION persisted Lisp entry points).
struct MethodDef {
  std::string name;
  uint32_t arity = 0;
  ClassId defined_in = kInvalidClassId;

  void EncodeTo(std::string* dst) const;
  static Result<MethodDef> DecodeFrom(Decoder* dec);
};

/// One class: name, direct superclasses (ordered -- leftmost wins name
/// conflicts, the ORION rule), locally-defined attributes and methods, and
/// the storage handle of its extent.
struct ClassDef {
  ClassId id = kInvalidClassId;
  std::string name;
  std::vector<ClassId> supers;          // direct superclasses, precedence order
  std::vector<AttributeDef> own_attrs;  // locally defined (incl. overrides)
  std::vector<MethodDef> own_methods;
  PageId extent_head = kInvalidPageId;  // heap file of instances
  uint64_t next_serial = 1;             // OID serial allocator for this class

  void EncodeTo(std::string* dst) const;
  static Result<ClassDef> DecodeFrom(Decoder* dec);
};

}  // namespace kimdb

#endif  // KIMDB_CATALOG_CLASS_DEF_H_
