#include "catalog/class_def.h"

namespace kimdb {

void Domain::EncodeTo(std::string* dst) const {
  PutFixed8(dst, static_cast<uint8_t>(kind));
  PutFixed32(dst, ref_class);
  PutFixed8(dst, is_set ? 1 : 0);
}

Result<Domain> Domain::DecodeFrom(Decoder* dec) {
  Domain d;
  KIMDB_ASSIGN_OR_RETURN(uint8_t kind, dec->ReadFixed8());
  if (kind > static_cast<uint8_t>(Kind::kRef)) {
    return Status::Corruption("bad domain kind");
  }
  d.kind = static_cast<Kind>(kind);
  KIMDB_ASSIGN_OR_RETURN(d.ref_class, dec->ReadFixed32());
  KIMDB_ASSIGN_OR_RETURN(uint8_t set, dec->ReadFixed8());
  d.is_set = set != 0;
  return d;
}

std::string Domain::ToString() const {
  std::string base;
  switch (kind) {
    case Kind::kAny:
      base = "any";
      break;
    case Kind::kInt:
      base = "integer";
      break;
    case Kind::kReal:
      base = "real";
      break;
    case Kind::kBool:
      base = "boolean";
      break;
    case Kind::kString:
      base = "string";
      break;
    case Kind::kRef:
      base = "class#" + std::to_string(ref_class);
      break;
  }
  return is_set ? "set-of " + base : base;
}

void AttributeDef::EncodeTo(std::string* dst) const {
  PutVarint32(dst, id);
  PutLengthPrefixed(dst, name);
  domain.EncodeTo(dst);
  default_value.EncodeTo(dst);
  PutFixed32(dst, defined_in);
}

Result<AttributeDef> AttributeDef::DecodeFrom(Decoder* dec) {
  AttributeDef a;
  KIMDB_ASSIGN_OR_RETURN(a.id, dec->ReadVarint32());
  KIMDB_ASSIGN_OR_RETURN(std::string_view name, dec->ReadLengthPrefixed());
  a.name = std::string(name);
  KIMDB_ASSIGN_OR_RETURN(a.domain, Domain::DecodeFrom(dec));
  KIMDB_ASSIGN_OR_RETURN(a.default_value, Value::DecodeFrom(dec));
  KIMDB_ASSIGN_OR_RETURN(a.defined_in, dec->ReadFixed32());
  return a;
}

void MethodDef::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, name);
  PutVarint32(dst, arity);
  PutFixed32(dst, defined_in);
}

Result<MethodDef> MethodDef::DecodeFrom(Decoder* dec) {
  MethodDef m;
  KIMDB_ASSIGN_OR_RETURN(std::string_view name, dec->ReadLengthPrefixed());
  m.name = std::string(name);
  KIMDB_ASSIGN_OR_RETURN(m.arity, dec->ReadVarint32());
  KIMDB_ASSIGN_OR_RETURN(m.defined_in, dec->ReadFixed32());
  return m;
}

void ClassDef::EncodeTo(std::string* dst) const {
  PutFixed32(dst, id);
  PutLengthPrefixed(dst, name);
  PutVarint32(dst, static_cast<uint32_t>(supers.size()));
  for (ClassId s : supers) PutFixed32(dst, s);
  PutVarint32(dst, static_cast<uint32_t>(own_attrs.size()));
  for (const auto& a : own_attrs) a.EncodeTo(dst);
  PutVarint32(dst, static_cast<uint32_t>(own_methods.size()));
  for (const auto& m : own_methods) m.EncodeTo(dst);
  PutFixed32(dst, extent_head);
  PutVarint64(dst, next_serial);
}

Result<ClassDef> ClassDef::DecodeFrom(Decoder* dec) {
  ClassDef c;
  KIMDB_ASSIGN_OR_RETURN(c.id, dec->ReadFixed32());
  KIMDB_ASSIGN_OR_RETURN(std::string_view name, dec->ReadLengthPrefixed());
  c.name = std::string(name);
  KIMDB_ASSIGN_OR_RETURN(uint32_t ns, dec->ReadVarint32());
  for (uint32_t i = 0; i < ns; ++i) {
    KIMDB_ASSIGN_OR_RETURN(ClassId s, dec->ReadFixed32());
    c.supers.push_back(s);
  }
  KIMDB_ASSIGN_OR_RETURN(uint32_t na, dec->ReadVarint32());
  for (uint32_t i = 0; i < na; ++i) {
    KIMDB_ASSIGN_OR_RETURN(AttributeDef a, AttributeDef::DecodeFrom(dec));
    c.own_attrs.push_back(std::move(a));
  }
  KIMDB_ASSIGN_OR_RETURN(uint32_t nm, dec->ReadVarint32());
  for (uint32_t i = 0; i < nm; ++i) {
    KIMDB_ASSIGN_OR_RETURN(MethodDef m, MethodDef::DecodeFrom(dec));
    c.own_methods.push_back(std::move(m));
  }
  KIMDB_ASSIGN_OR_RETURN(c.extent_head, dec->ReadFixed32());
  KIMDB_ASSIGN_OR_RETURN(c.next_serial, dec->ReadVarint64());
  return c;
}

}  // namespace kimdb
