#ifndef KIMDB_CATALOG_CATALOG_H_
#define KIMDB_CATALOG_CATALOG_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/class_def.h"
#include "model/object.h"
#include "model/oid.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {

/// Specification of an attribute when creating a class or adding an
/// attribute (the catalog assigns the stable AttrId).
struct AttributeSpec {
  std::string name;
  Domain domain;
  Value default_value;

  AttributeSpec(std::string n, Domain d, Value dv = Value::Null())
      : name(std::move(n)), domain(std::move(d)),
        default_value(std::move(dv)) {}
};

struct MethodSpec {
  std::string name;
  uint32_t arity = 0;
};

/// The schema: the set of classes organized as a rooted DAG (paper §3.1
/// point 5), with dynamic extensibility (schema evolution, §5.1) following
/// the BANE87 taxonomy and ORION conflict-resolution rules:
///
///  * multiple inheritance with leftmost-superclass precedence for name
///    conflicts;
///  * a locally (re)defined attribute shadows an inherited one;
///  * dropping a class re-parents its subclasses to its superclasses and
///    re-targets attribute domains that referenced it to the root class.
///
/// Every mutation bumps `schema_version()`, which invalidates the cached
/// per-class resolved views (effective attributes, linearization, subtree).
class Catalog {
 public:
  /// Creates a catalog containing only the root class ("Object").
  Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  // Moves are setup-time only (Database::Open, Decode); they are not
  // thread-safe against concurrent readers of either catalog.
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  // --- class definition ----------------------------------------------------

  /// Creates a class. Empty `supers` means the root class is the only
  /// superclass. Attribute/method names must be unique among themselves.
  Result<ClassId> CreateClass(std::string_view name,
                              const std::vector<ClassId>& supers,
                              const std::vector<AttributeSpec>& attrs,
                              const std::vector<MethodSpec>& methods = {});

  /// Drops a class: its direct subclasses are re-parented onto its
  /// superclasses (splice), and ref-domains targeting it fall back to the
  /// root class. The caller must have dropped/migrated the extent first.
  Status DropClass(ClassId cls);

  // --- lookup --------------------------------------------------------------

  Result<ClassId> FindClass(std::string_view name) const;
  Result<const ClassDef*> GetClass(ClassId cls) const;
  /// Mutable access for the storage layer (extent head, serial allocation).
  Result<ClassDef*> GetClassMutable(ClassId cls);
  std::vector<ClassId> AllClasses() const;  // excluding the root

  // --- hierarchy queries ---------------------------------------------------

  bool IsSubclassOf(ClassId sub, ClassId super) const;
  /// `cls` plus all direct and indirect subclasses (the "class hierarchy
  /// rooted at" `cls` -- the wider query scope of §3.2).
  std::vector<ClassId> Subtree(ClassId cls) const;
  /// Method/attribute resolution order: `cls`, then ancestors, depth-first
  /// following superclass precedence, each class once.
  std::vector<ClassId> Linearize(ClassId cls) const;

  // --- resolved (inherited) schema ----------------------------------------

  /// Precomputed per-class view of the effective schema, cached until the
  /// next schema mutation. `by_id` makes membership tests O(1) (the read
  /// path's default-fill and dropped-attr elision used to be O(A²) per
  /// object); `defaulted` lists just the attributes with non-null defaults
  /// so materialization skips the rest.
  struct EffectiveSchema {
    std::vector<const AttributeDef*> attrs;  // precedence order
    std::unordered_map<AttrId, const AttributeDef*> by_id;
    std::vector<const AttributeDef*> defaulted;
  };

  /// All attributes visible on `cls` (own + inherited, conflicts resolved).
  Result<std::vector<const AttributeDef*>> EffectiveAttrs(ClassId cls) const;
  /// The cached effective-schema view. The pointer stays valid until the
  /// next schema mutation (same lifetime as the AttributeDef pointers all
  /// resolution APIs hand out).
  Result<const EffectiveSchema*> EffectiveSchemaFor(ClassId cls) const;
  /// Resolves an attribute by name with inheritance.
  Result<const AttributeDef*> ResolveAttr(ClassId cls,
                                          std::string_view name) const;
  /// Resolves a method by name with inheritance -- this *is* late binding
  /// (§3.1 point 6): the defining class found here keys the registry.
  Result<const MethodDef*> ResolveMethod(ClassId cls,
                                         std::string_view name) const;
  /// Looks up an attribute definition by its stable id (any class).
  Result<const AttributeDef*> GetAttrById(AttrId id) const;

  /// Type-checks `v` against `d` (subclass-compatible refs allowed; `kAny`
  /// accepts everything; null allowed everywhere).
  Status CheckValue(const Domain& d, const Value& v) const;

  // --- schema evolution (§5.1, BANE87) --------------------------------------

  Status AddAttribute(ClassId cls, const AttributeSpec& spec);
  Status DropAttribute(ClassId cls, std::string_view name);
  Status RenameAttribute(ClassId cls, std::string_view from,
                         std::string_view to);
  Status ChangeAttributeDefault(ClassId cls, std::string_view name,
                                Value default_value);
  Status RenameClass(ClassId cls, std::string_view new_name);
  Status AddMethod(ClassId cls, const MethodSpec& spec);
  Status DropMethod(ClassId cls, std::string_view name);
  /// Adds a superclass edge; rejects cycles and self-edges.
  Status AddSuperclass(ClassId cls, ClassId super);
  /// Removes a superclass edge; if it was the last one, the root class
  /// becomes the superclass (the DAG stays rooted).
  Status RemoveSuperclass(ClassId cls, ClassId super);

  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_relaxed);
  }

  // --- persistence ----------------------------------------------------------

  void EncodeTo(std::string* dst) const;
  static Result<Catalog> Decode(std::string_view bytes);

 private:
  Status CheckAcyclic(ClassId cls, ClassId new_super) const;
  void Bump() {
    schema_version_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(resolved_mu_);
    resolved_cache_.clear();
  }

  struct Resolved {
    std::vector<ClassId> linearization;
    EffectiveSchema schema;
  };
  const Resolved& ResolvedFor(ClassId cls) const;

  std::map<ClassId, ClassDef> classes_;  // ordered for deterministic encode
  std::unordered_map<std::string, ClassId> by_name_;
  ClassId next_class_id_ = 1;  // 0 is the root
  AttrId next_attr_id_ = 1;
  std::atomic<uint64_t> schema_version_{0};
  /// Leaf lock for the lazily-built resolved views: concurrent readers
  /// (parallel scan workers, shared-lock Gets) race to fill
  /// resolved_cache_. Schema *mutation* concurrent with readers is not
  /// supported (pointer-stability contract above), only reads racing
  /// reads.
  mutable std::mutex resolved_mu_;
  mutable std::unordered_map<ClassId, Resolved> resolved_cache_;
};

}  // namespace kimdb

#endif  // KIMDB_CATALOG_CATALOG_H_
