#include "catalog/method_registry.h"

namespace kimdb {

Status MethodRegistry::Register(const Catalog& catalog, ClassId cls,
                                std::string_view name, MethodFn fn) {
  KIMDB_ASSIGN_OR_RETURN(const ClassDef* def, catalog.GetClass(cls));
  bool declared = false;
  for (const auto& m : def->own_methods) {
    if (m.name == name) {
      declared = true;
      break;
    }
  }
  if (!declared) {
    return Status::FailedPrecondition(
        "method '" + std::string(name) +
        "' is not declared on the class; declare it in the catalog first");
  }
  bodies_[Key{cls, std::string(name)}] = std::move(fn);
  return Status::OK();
}

Result<const MethodFn*> MethodRegistry::Resolve(const Catalog& catalog,
                                                ClassId cls,
                                                std::string_view name) const {
  // Late binding: find the defining class along the receiver's
  // linearization, then look up the body bound there.
  KIMDB_ASSIGN_OR_RETURN(const MethodDef* def,
                         catalog.ResolveMethod(cls, name));
  auto it = bodies_.find(Key{def->defined_in, std::string(name)});
  if (it == bodies_.end()) {
    return Status::FailedPrecondition(
        "method '" + std::string(name) +
        "' declared but no body registered for its defining class");
  }
  return &it->second;
}

Result<Value> MethodRegistry::Invoke(const Catalog& catalog,
                                     MethodContext& ctx,
                                     std::string_view name,
                                     const std::vector<Value>& args) const {
  if (ctx.self == nullptr) {
    return Status::InvalidArgument("method invocation without a receiver");
  }
  KIMDB_ASSIGN_OR_RETURN(const MethodDef* def,
                         catalog.ResolveMethod(ctx.self->class_id(), name));
  if (args.size() != def->arity) {
    return Status::InvalidArgument(
        "method '" + std::string(name) + "' expects " +
        std::to_string(def->arity) + " arguments, got " +
        std::to_string(args.size()));
  }
  KIMDB_ASSIGN_OR_RETURN(
      const MethodFn* fn,
      Resolve(catalog, ctx.self->class_id(), name));
  return (*fn)(ctx, args);
}

}  // namespace kimdb
