#ifndef KIMDB_CATALOG_METHOD_REGISTRY_H_
#define KIMDB_CATALOG_METHOD_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "model/object.h"
#include "model/value.h"
#include "util/result.h"

namespace kimdb {

/// Marker base for the host environment a method body may navigate (the
/// Database facade derives from it). Typed replacement for the old
/// `void* env` plumbing: method bodies that need the full facade downcast
/// with static_cast<Database*> at the registration site, where the
/// concrete type is known.
class MethodEnv {
 public:
  virtual ~MethodEnv() = default;
};

/// Execution context passed to a method body. `env` points at the owning
/// environment so registered methods can navigate (the query layer sets
/// it); methods that only touch `self` ignore it.
struct MethodContext {
  const Object* self = nullptr;
  MethodEnv* env = nullptr;
};

/// A method body: native C++ code bound to a (class, method-name) pair.
using MethodFn =
    std::function<Result<Value>(MethodContext&, const std::vector<Value>&)>;

/// Runtime half of the behaviour model. The catalog stores method
/// *signatures* (per class); this registry stores the *bodies*. Invocation
/// is message passing with late binding (paper §3.1 point 6): the method is
/// resolved against the receiver's class hierarchy at call time, so a body
/// registered on a superclass runs for subclass instances unless the
/// subclass overrides it.
class MethodRegistry {
 public:
  /// Binds a body to `cls`'s method `name`. The signature must already be
  /// declared in the catalog on exactly `cls`.
  Status Register(const Catalog& catalog, ClassId cls, std::string_view name,
                  MethodFn fn);

  /// Sends message `name` to `receiver` (late-bound dispatch).
  Result<Value> Invoke(const Catalog& catalog, MethodContext& ctx,
                       std::string_view name,
                       const std::vector<Value>& args) const;

  /// Resolves without invoking (used by the optimizer and by E11).
  Result<const MethodFn*> Resolve(const Catalog& catalog, ClassId cls,
                                  std::string_view name) const;

 private:
  struct Key {
    ClassId cls;
    std::string name;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>{}(k.cls) ^
             (std::hash<std::string>{}(k.name) << 1);
    }
  };

  std::unordered_map<Key, MethodFn, KeyHash> bodies_;
};

}  // namespace kimdb

#endif  // KIMDB_CATALOG_METHOD_REGISTRY_H_
