#include "catalog/stats.h"

#include <algorithm>
#include <mutex>

namespace kimdb {

namespace {

// Bucket i of `h` covers (bounds[i-1], bounds[i]]; returns the index of
// the bucket whose range contains `key`, or npos when key sorts above the
// last bound (outside the analyzed domain).
size_t BucketFor(const EquiDepthHistogram& h, const Value& key) {
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    if (key.Compare(h.bounds[i]) <= 0) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

double EquiDepthHistogram::SelectivityEq(const Value& key) const {
  if (empty()) return 0.0;
  size_t b = BucketFor(*this, key);
  if (b == static_cast<size_t>(-1)) return 0.0;
  double bucket_frac =
      static_cast<double>(counts[b]) / static_cast<double>(total_entries);
  double per_key = 1.0 / static_cast<double>(std::max<uint64_t>(1, distinct_keys));
  return std::min(bucket_frac, per_key);
}

double EquiDepthHistogram::SelectivityRange(const std::optional<Value>& lo,
                                            bool lo_inclusive,
                                            const std::optional<Value>& hi,
                                            bool hi_inclusive) const {
  (void)lo_inclusive;
  if (empty()) return 0.0;
  double covered = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const Value& ub = bounds[i];
    const Value* lb = i > 0 ? &bounds[i - 1] : nullptr;  // exclusive
    // Entirely above [lo, hi]: every key in the bucket is > lb >= hi.
    if (hi && lb != nullptr && lb->Compare(*hi) >= 0) break;
    // Entirely below: the bucket's largest key is still under lo.
    if (lo) {
      int c = ub.Compare(*lo);
      if (c < 0) continue;
      if (c == 0 && !lo_inclusive) continue;
    }
    bool lo_covered = !lo || (lb != nullptr && lb->Compare(*lo) >= 0);
    bool hi_covered = true;
    if (hi) {
      int c = ub.Compare(*hi);
      hi_covered = c < 0 || (c == 0 && hi_inclusive);
    }
    covered += (lo_covered && hi_covered) ? counts[i] : counts[i] * 0.5;
  }
  double frac = covered / static_cast<double>(total_entries);
  return std::clamp(frac, 0.0, 1.0);
}

void EquiDepthHistogram::EncodeTo(std::string* dst) const {
  PutVarint64(dst, total_entries);
  PutVarint64(dst, distinct_keys);
  PutVarint32(dst, static_cast<uint32_t>(counts.size()));
  for (size_t i = 0; i < counts.size(); ++i) {
    bounds[i].EncodeTo(dst);
    PutVarint64(dst, counts[i]);
  }
}

Result<EquiDepthHistogram> EquiDepthHistogram::DecodeFrom(Decoder* dec) {
  EquiDepthHistogram h;
  auto total = dec->ReadVarint64();
  if (!total.ok()) return total.status();
  auto distinct = dec->ReadVarint64();
  if (!distinct.ok()) return distinct.status();
  auto n = dec->ReadVarint32();
  if (!n.ok()) return n.status();
  h.total_entries = *total;
  h.distinct_keys = *distinct;
  h.bounds.reserve(*n);
  h.counts.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto v = Value::DecodeFrom(dec);
    if (!v.ok()) return v.status();
    auto c = dec->ReadVarint64();
    if (!c.ok()) return c.status();
    h.bounds.push_back(std::move(*v));
    h.counts.push_back(*c);
  }
  return h;
}

void ClassStats::EncodeTo(std::string* dst) const {
  PutVarint64(dst, live_objects);
  PutVarint64(dst, extent_pages);
  PutVarint64(dst, mutations_since_analyze);
  PutFixed8(dst, analyzed ? 1 : 0);
  PutVarint32(dst, static_cast<uint32_t>(path_hists.size()));
  for (const auto& [path, hist] : path_hists) {
    PutLengthPrefixed(dst, path);
    hist.EncodeTo(dst);
  }
}

Result<ClassStats> ClassStats::DecodeFrom(Decoder* dec) {
  ClassStats s;
  auto live = dec->ReadVarint64();
  if (!live.ok()) return live.status();
  auto pages = dec->ReadVarint64();
  if (!pages.ok()) return pages.status();
  auto drift = dec->ReadVarint64();
  if (!drift.ok()) return drift.status();
  auto analyzed = dec->ReadFixed8();
  if (!analyzed.ok()) return analyzed.status();
  auto n = dec->ReadVarint32();
  if (!n.ok()) return n.status();
  s.live_objects = *live;
  s.extent_pages = *pages;
  s.mutations_since_analyze = *drift;
  s.analyzed = *analyzed != 0;
  for (uint32_t i = 0; i < *n; ++i) {
    auto path = dec->ReadLengthPrefixed();
    if (!path.ok()) return path.status();
    auto h = EquiDepthHistogram::DecodeFrom(dec);
    if (!h.ok()) return h.status();
    s.path_hists.emplace(std::string(*path), std::move(*h));
  }
  return s;
}

void StatsRegistry::RecordMutation(ClassId cls) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(cls);
    if (it != entries_.end()) {
      it->second->mutations.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& e = entries_[cls];
  if (e == nullptr) e = std::make_unique<Entry>();
  e->mutations.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::Install(ClassId cls, ClassStats stats) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& e = entries_[cls];
  if (e == nullptr) e = std::make_unique<Entry>();
  stats.mutations_since_analyze = 0;
  stats.analyzed = true;
  e->snapshot = std::move(stats);
  e->mutations.store(0, std::memory_order_relaxed);
}

std::optional<ClassStats> StatsRegistry::Get(ClassId cls) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(cls);
  if (it == entries_.end()) return std::nullopt;
  ClassStats out = it->second->snapshot;
  out.mutations_since_analyze =
      it->second->mutations.load(std::memory_order_relaxed);
  return out;
}

void StatsRegistry::EncodeTo(std::string* dst) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ClassId> ids;
  ids.reserve(entries_.size());
  for (const auto& [cls, e] : entries_) {
    if (e->snapshot.analyzed) ids.push_back(cls);  // drift-only entries skip
  }
  std::sort(ids.begin(), ids.end());
  PutVarint32(dst, static_cast<uint32_t>(ids.size()));
  for (ClassId cls : ids) {
    const auto& e = *entries_.at(cls);
    PutVarint32(dst, cls);
    ClassStats s = e.snapshot;
    s.mutations_since_analyze = e.mutations.load(std::memory_order_relaxed);
    s.EncodeTo(dst);
  }
}

Status StatsRegistry::DecodeFrom(Decoder* dec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  auto n = dec->ReadVarint32();
  if (!n.ok()) return n.status();
  for (uint32_t i = 0; i < *n; ++i) {
    auto cls = dec->ReadVarint32();
    if (!cls.ok()) return cls.status();
    auto s = ClassStats::DecodeFrom(dec);
    if (!s.ok()) return s.status();
    auto e = std::make_unique<Entry>();
    e->mutations.store(s->mutations_since_analyze, std::memory_order_relaxed);
    e->snapshot = std::move(*s);
    entries_[static_cast<ClassId>(*cls)] = std::move(e);
  }
  return Status::OK();
}

}  // namespace kimdb
