#include "authz/authorization.h"

#include <deque>

namespace kimdb {

Result<UserId> AuthorizationManager::CreateUser(std::string name) {
  if (name.empty()) return Status::InvalidArgument("empty user name");
  if (users_.count(name)) return Status::AlreadyExists("user exists");
  UserId id = next_user_++;
  users_[std::move(name)] = id;
  return id;
}

Result<RoleId> AuthorizationManager::CreateRole(std::string name) {
  if (name.empty()) return Status::InvalidArgument("empty role name");
  if (roles_.count(name)) return Status::AlreadyExists("role exists");
  RoleId id = next_role_++;
  roles_[std::move(name)] = id;
  return id;
}

Result<UserId> AuthorizationManager::FindUser(std::string_view name) const {
  auto it = users_.find(std::string(name));
  if (it == users_.end()) return Status::NotFound("no such user");
  return it->second;
}

Result<RoleId> AuthorizationManager::FindRole(std::string_view name) const {
  auto it = roles_.find(std::string(name));
  if (it == roles_.end()) return Status::NotFound("no such role");
  return it->second;
}

Status AuthorizationManager::GrantRoleToUser(RoleId role, UserId user) {
  user_roles_[user].insert(role);
  return Status::OK();
}

Status AuthorizationManager::RevokeRoleFromUser(RoleId role, UserId user) {
  auto it = user_roles_.find(user);
  if (it == user_roles_.end() || it->second.erase(role) == 0) {
    return Status::NotFound("user does not hold the role");
  }
  return Status::OK();
}

Status AuthorizationManager::Grant(RoleId role, Privilege priv, ClassId cls) {
  KIMDB_RETURN_IF_ERROR(catalog_->GetClass(cls).status());
  auths_[AuthKey{role, cls, static_cast<uint8_t>(priv)}] = true;
  return Status::OK();
}

Status AuthorizationManager::Deny(RoleId role, Privilege priv, ClassId cls) {
  KIMDB_RETURN_IF_ERROR(catalog_->GetClass(cls).status());
  auths_[AuthKey{role, cls, static_cast<uint8_t>(priv)}] = false;
  return Status::OK();
}

Status AuthorizationManager::Revoke(RoleId role, Privilege priv,
                                    ClassId cls) {
  auths_.erase(AuthKey{role, cls, static_cast<uint8_t>(priv)});
  return Status::OK();
}

Status AuthorizationManager::GrantView(RoleId role, std::string view_name) {
  view_grants_[role].insert(std::move(view_name));
  return Status::OK();
}

Status AuthorizationManager::RevokeView(RoleId role,
                                        std::string_view view_name) {
  auto it = view_grants_.find(role);
  if (it == view_grants_.end() ||
      it->second.erase(std::string(view_name)) == 0) {
    return Status::NotFound("view grant not found");
  }
  return Status::OK();
}

std::optional<std::pair<int, bool>> AuthorizationManager::NearestAuth(
    RoleId role, Privilege priv, ClassId cls) const {
  // BFS upward through the superclass DAG: distance 0 is the class itself.
  // At each distance, a denial beats a grant; kWrite authorizations also
  // answer kRead checks.
  std::deque<std::pair<ClassId, int>> queue{{cls, 0}};
  std::unordered_set<ClassId> seen{cls};
  std::optional<std::pair<int, bool>> found;
  while (!queue.empty()) {
    auto [cur, dist] = queue.front();
    queue.pop_front();
    if (found.has_value() && dist > found->first) break;

    auto consider = [&](Privilege p) {
      auto it = auths_.find(AuthKey{role, cur, static_cast<uint8_t>(p)});
      if (it == auths_.end()) return;
      if (!found.has_value() || dist < found->first ||
          (dist == found->first && !it->second)) {
        found = {dist, it->second};
      }
    };
    consider(priv);
    if (priv == Privilege::kRead) consider(Privilege::kWrite);

    Result<const ClassDef*> def = catalog_->GetClass(cur);
    if (def.ok()) {
      for (ClassId s : (*def)->supers) {
        if (seen.insert(s).second) queue.push_back({s, dist + 1});
      }
    }
  }
  return found;
}

Result<bool> AuthorizationManager::Check(UserId user, Privilege priv,
                                         ClassId cls) const {
  auto roles = user_roles_.find(user);
  if (roles == user_roles_.end()) return false;
  // The user is authorized if any of their roles resolves to a grant.
  // (A denial on one role does not override a grant on another; denials
  // scope within a role's own hierarchy resolution.)
  for (RoleId role : roles->second) {
    auto auth = NearestAuth(role, priv, cls);
    if (auth.has_value() && auth->second) return true;
  }
  return false;
}

Result<bool> AuthorizationManager::CheckObject(
    UserId user, Privilege priv, const Object& obj,
    const ViewManager* views) const {
  KIMDB_ASSIGN_OR_RETURN(bool class_level,
                         Check(user, priv, obj.class_id()));
  if (class_level) return true;
  if (priv != Privilege::kRead || views == nullptr) return false;
  // Content-based authorization: any granted view containing the object.
  auto roles = user_roles_.find(user);
  if (roles == user_roles_.end()) return false;
  for (RoleId role : roles->second) {
    auto vg = view_grants_.find(role);
    if (vg == view_grants_.end()) continue;
    for (const std::string& view : vg->second) {
      Result<bool> inside = views->Contains(view, obj);
      if (inside.ok() && *inside) return true;
    }
  }
  return false;
}

Status AuthorizationManager::Require(UserId user, Privilege priv,
                                     ClassId cls) const {
  KIMDB_ASSIGN_OR_RETURN(bool ok, Check(user, priv, cls));
  if (!ok) {
    return Status::PermissionDenied("user lacks the required privilege on "
                                    "the class");
  }
  return Status::OK();
}

}  // namespace kimdb
