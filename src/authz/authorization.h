#ifndef KIMDB_AUTHZ_AUTHORIZATION_H_
#define KIMDB_AUTHZ_AUTHORIZATION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "model/object.h"
#include "query/views.h"
#include "util/result.h"

namespace kimdb {

using UserId = uint32_t;
using RoleId = uint32_t;

enum class Privilege : uint8_t { kRead = 0, kWrite = 1, kCreate = 2,
                                 kDelete = 3 };

/// Authorization for an object-oriented database (paper §3.2/§5, RAB190
/// direction). The model:
///
///  * subjects are roles; users hold roles;
///  * authorization objects are classes; a grant on a class *implicitly*
///    propagates to its entire subtree of subclasses (the class-hierarchy
///    granule again) -- this is "implicit authorization";
///  * both positive grants and negative authorizations (denials) exist;
///    conflicts resolve by class-hierarchy distance from the checked
///    class: the nearest explicit authorization wins, and at equal
///    distance a denial beats a grant;
///  * kWrite implies kRead; kRead implies nothing;
///  * *content-based* authorization (§5.4) goes through views: granting a
///    view lets the role read exactly the objects inside the view.
class AuthorizationManager {
 public:
  explicit AuthorizationManager(const Catalog* catalog)
      : catalog_(catalog) {}

  // --- principals -----------------------------------------------------------

  Result<UserId> CreateUser(std::string name);
  Result<RoleId> CreateRole(std::string name);
  Result<UserId> FindUser(std::string_view name) const;
  Result<RoleId> FindRole(std::string_view name) const;
  Status GrantRoleToUser(RoleId role, UserId user);
  Status RevokeRoleFromUser(RoleId role, UserId user);

  // --- class-level authorizations -------------------------------------------

  Status Grant(RoleId role, Privilege priv, ClassId cls);
  Status Deny(RoleId role, Privilege priv, ClassId cls);
  Status Revoke(RoleId role, Privilege priv, ClassId cls);  // removes both

  /// Content-based authorization: the role may read objects inside the
  /// named view (checked by CheckObject).
  Status GrantView(RoleId role, std::string view_name);
  Status RevokeView(RoleId role, std::string_view view_name);

  // --- checks ----------------------------------------------------------------

  /// Class-level check with implicit propagation and conflict resolution.
  Result<bool> Check(UserId user, Privilege priv, ClassId cls) const;

  /// Object-level check: class-level first; if that denies and `views` is
  /// given, a granted view containing the object authorizes kRead.
  Result<bool> CheckObject(UserId user, Privilege priv, const Object& obj,
                           const ViewManager* views = nullptr) const;

  /// Convenience guard returning PermissionDenied instead of false.
  Status Require(UserId user, Privilege priv, ClassId cls) const;

 private:
  struct AuthKey {
    RoleId role;
    ClassId cls;
    uint8_t priv;
    bool operator==(const AuthKey&) const = default;
  };
  struct AuthKeyHash {
    size_t operator()(const AuthKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.role) << 34) ^
                                   (static_cast<uint64_t>(k.cls) << 2) ^
                                   k.priv);
    }
  };

  /// Distance (in superclass steps) from `cls` to the nearest explicit
  /// authorization of (role, priv'); nullopt if none on the path to root.
  /// `priv_or_stronger` considers kWrite grants when checking kRead.
  std::optional<std::pair<int, bool>> NearestAuth(RoleId role,
                                                  Privilege priv,
                                                  ClassId cls) const;

  const Catalog* catalog_;
  UserId next_user_ = 1;
  RoleId next_role_ = 1;
  std::unordered_map<std::string, UserId> users_;
  std::unordered_map<std::string, RoleId> roles_;
  std::unordered_map<UserId, std::unordered_set<RoleId>> user_roles_;
  // (role, class, priv) -> granted(true) / denied(false)
  std::unordered_map<AuthKey, bool, AuthKeyHash> auths_;
  std::unordered_map<RoleId, std::unordered_set<std::string>> view_grants_;
};

}  // namespace kimdb

#endif  // KIMDB_AUTHZ_AUTHORIZATION_H_
