#ifndef KIMDB_EXEC_OPERATOR_H_
#define KIMDB_EXEC_OPERATOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "model/object.h"
#include "model/value.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {
namespace exec {

/// One row flowing through an operator tree. Object-model operators fill
/// `oid` (and `obj` when the producer already materialized the object, so
/// consumers never re-fetch what a scan just decoded); relational operators
/// fill `tuple`. A Row is cheap to move, never to copy implicitly.
///
/// Batched execution late-materializes: a batched Filter over index
/// candidates evaluates its predicate against the shared resident image
/// and emits the row with `obj` still empty (batch consumers read OIDs).
/// The row-at-a-time path keeps its materialize-on-pass contract.
struct Row {
  Oid oid = kNilOid;
  std::optional<Object> obj;        // set by extent scans, not index scans
  std::vector<Value> tuple;         // set by relational operators
};

/// Predicate hook the query layer injects into Filter / scans.
/// Implemented by QueryEngine::Matches (path semantics, late-bound method
/// calls); kept as a std::function so the exec layer does not depend on
/// the query layer. Must be thread-safe: parallel scans evaluate it from
/// several workers at once, each accounting on a private shadow
/// ExecContext that is flushed into the query's context when the worker
/// finishes (see ExecContext::FlushCountersInto).
using MatchFn = std::function<Result<bool>(const Object&, ExecContext*)>;

/// Per-operator EXPLAIN ANALYZE span, filled only while the context's
/// analyze flag is armed. Time and pages are *inclusive* of children (a
/// parent's Next drives its child's Next inside the measured window), like
/// the "actual time" column of the classical EXPLAIN ANALYZE renderers.
/// Plain fields: every wrapper call happens on the tree's consumer thread
/// (parallel scan workers communicate through the row queue and never call
/// operator methods), so no atomics are needed.
struct OpStats {
  uint64_t rows = 0;         // rows this operator produced
  uint64_t loops = 0;        // Next calls, including the end-of-stream one
  uint64_t time_ns = 0;      // wall time inside Open+Next+Close
  uint64_t pages_hit = 0;    // buffer-pool hits during those calls
  uint64_t pages_missed = 0; // buffer-pool misses during those calls
  uint64_t pages_readahead = 0;  // hits served from a prefetched frame
  uint64_t obj_cache_hits = 0;   // Gets served by the object cache
  uint64_t obj_cache_misses = 0; // Gets that decoded from the heap
};

/// Pull-based (Volcano) operator: Open prepares state, Next produces rows
/// one at a time until it returns false, Close releases resources. The
/// same ExecContext is threaded through all three calls and shared by the
/// whole tree; operators account their work on its counters.
///
/// Lifecycle contract: Open exactly once, Next until false/error, Close
/// exactly once (also after an error -- drivers must always Close so
/// parallel operators can join their workers).
///
/// The public lifecycle methods are non-virtual instrumentation shells
/// around the virtual *Impl hooks subclasses provide: when the context has
/// EXPLAIN ANALYZE armed they account rows/loops/time/pages into stats(),
/// and when it does not they cost one relaxed atomic load.
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open(ExecContext* ctx) {
    RecordLifecycle(ctx, obs::TraceEventKind::kBegin);
    if (!ctx->analyze_enabled()) return OpenImpl(ctx);
    Span span(this, ctx);
    return OpenImpl(ctx);
  }

  /// Fills *row and returns true, or returns false at end of stream.
  Result<bool> Next(ExecContext* ctx, Row* row) {
    if (!ctx->analyze_enabled()) return NextImpl(ctx, row);
    Span span(this, ctx);
    Result<bool> more = NextImpl(ctx, row);
    ++stats_.loops;
    if (more.ok() && *more) ++stats_.rows;
    return more;
  }

  /// Batch-at-a-time pull: clears `*out`, fills it with up to
  /// ctx->batch_size() rows, and returns the count -- 0 means end of
  /// stream (a non-empty batch may be short of the target; only 0 ends
  /// the stream). One NextBatch call pays the virtual dispatch, span
  /// accounting and budget poll that row-at-a-time pays per row.
  Result<size_t> NextBatch(ExecContext* ctx, std::vector<Row>* out) {
    out->clear();
    const size_t max = ctx->batch_size();
    if (!ctx->analyze_enabled()) return NextBatchImpl(ctx, out, max);
    Span span(this, ctx);
    Result<size_t> n = NextBatchImpl(ctx, out, max);
    ++stats_.loops;  // loops counts NextBatch calls in batch mode
    if (n.ok()) stats_.rows += *n;
    return n;
  }

  void Close(ExecContext* ctx) {
    if (!ctx->analyze_enabled()) {
      CloseImpl(ctx);
    } else {
      Span span(this, ctx);
      CloseImpl(ctx);
    }
    RecordLifecycle(ctx, obs::TraceEventKind::kEnd);
  }

  /// Batched scan+filter fusion: a parent Filter offers its predicate so
  /// the scan can apply it inside NextBatchImpl, before a non-matching
  /// object is ever moved out of the decoded page buffer (the batched
  /// sibling of ParallelExtentScan's constructor-time pushdown). Returns
  /// true iff this operator -- and, for composites, every child -- will
  /// filter the rows it emits from NextBatchImpl. Row-at-a-time Next is
  /// never affected; `pred` must outlive the operator's open lifecycle.
  virtual bool AcceptBatchResidual(const MatchFn* pred) {
    (void)pred;
    return false;
  }

  /// One-line self-description for EXPLAIN ("ExtentScan(Vehicle)").
  virtual std::string Describe() const = 0;
  /// Child operators, for EXPLAIN tree rendering.
  virtual std::vector<const Operator*> children() const { return {}; }

  /// Span accounted so far; all zeros unless the tree ran with
  /// ExecContext::EnableAnalyze().
  const OpStats& stats() const { return stats_; }

  /// Planner estimates for EXPLAIN (est_rows next to actual rows). Set by
  /// QueryEngine::Lower only when the plan was cost-based; `est_cost` < 0
  /// means "rows only" (non-root operators).
  void SetEstimates(uint64_t est_rows, double est_cost = -1.0) {
    has_estimates_ = true;
    est_rows_ = est_rows;
    est_cost_ = est_cost;
  }
  bool has_estimates() const { return has_estimates_; }
  uint64_t est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(ExecContext* ctx, Row* row) = 0;
  virtual void CloseImpl(ExecContext* ctx) = 0;

  /// Default batching: drain NextImpl row by row. Operators with cheaper
  /// bulk paths (page buffers, candidate vectors, drain queues) override.
  /// `out` arrives empty; implementations append at most `max` rows.
  virtual Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                                       size_t max) {
    Row row;
    while (out->size() < max) {
      KIMDB_ASSIGN_OR_RETURN(bool more, NextImpl(ctx, &row));
      if (!more) break;
      out->push_back(std::move(row));
      row = Row{};
    }
    return out->size();
  }

 private:
  /// Emits the operator's open/close boundary into the flight recorder
  /// (kExecOp; arg tags the operator so a dump can pair B/E events). Next
  /// is deliberately not traced -- per-row events would flood the ring.
  void RecordLifecycle(ExecContext* ctx, obs::TraceEventKind kind) {
    obs::FlightRecorder* r = ctx->recorder();
    if (r == nullptr) return;
    r->Record(obs::TraceStage::kExecOp, kind, 0,
              static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)));
  }

  /// Accumulates wall time and the buffer-pool delta of one lifecycle call.
  class Span {
   public:
    Span(Operator* op, ExecContext* ctx)
        : op_(op),
          ctx_(ctx),
          pages_(ctx->PageCountsNow()),
          oc_hits_(ctx->obj_cache_hits.load(std::memory_order_relaxed)),
          oc_misses_(ctx->obj_cache_misses.load(std::memory_order_relaxed)),
          start_(std::chrono::steady_clock::now()) {}
    ~Span() {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      if (ns > 0) op_->stats_.time_ns += static_cast<uint64_t>(ns);
      ExecContext::PageCounts now = ctx_->PageCountsNow();
      op_->stats_.pages_hit += now.hits - pages_.hits;
      op_->stats_.pages_missed += now.misses - pages_.misses;
      op_->stats_.pages_readahead += now.readahead_hits - pages_.readahead_hits;
      op_->stats_.obj_cache_hits +=
          ctx_->obj_cache_hits.load(std::memory_order_relaxed) - oc_hits_;
      op_->stats_.obj_cache_misses +=
          ctx_->obj_cache_misses.load(std::memory_order_relaxed) - oc_misses_;
    }

   private:
    Operator* op_;
    ExecContext* ctx_;
    ExecContext::PageCounts pages_;
    uint64_t oc_hits_;
    uint64_t oc_misses_;
    std::chrono::steady_clock::time_point start_;
  };

  OpStats stats_;
  bool has_estimates_ = false;
  uint64_t est_rows_ = 0;
  double est_cost_ = -1.0;
};

/// Renders the operator tree rooted at `root` with two-space indentation:
///
///   Filter(Weight > 7500)
///     HierarchyScan(Vehicle)
///       ExtentScan(Vehicle)
///       ExtentScan(Truck)
std::string ExplainTree(const Operator& root);

/// Renders the tree with each operator's ANALYZE span appended:
///
///   Filter(Weight > 7500) (rows=2 loops=3 time=0.41ms pages=12+0)
///     ...
///
/// `pages=H+M` is hits+misses. Meaningful only after the tree executed
/// under a context with EnableAnalyze().
std::string ExplainAnalyzeTree(const Operator& root);

/// Drives a tree to completion, handing every row to `fn`. Always Closes,
/// including on error paths.
Status ForEachRow(Operator& root, ExecContext* ctx,
                  const std::function<Status(Row&)>& fn);

/// Batch-at-a-time driver: pulls ctx->batch_size() rows per NextBatch and
/// hands them to `fn` one by one. Degrades to ForEachRow when the batch
/// size is 1. Always Closes, including on error paths.
Status ForEachRowBatched(Operator& root, ExecContext* ctx,
                         const std::function<Status(Row&)>& fn);

/// Drives a tree to completion collecting the OIDs it produces (the
/// object-model result shape).
Result<std::vector<Oid>> CollectOids(Operator& root, ExecContext* ctx);

}  // namespace exec
}  // namespace kimdb

#endif  // KIMDB_EXEC_OPERATOR_H_
