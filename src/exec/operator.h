#ifndef KIMDB_EXEC_OPERATOR_H_
#define KIMDB_EXEC_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "model/object.h"
#include "model/value.h"
#include "util/result.h"
#include "util/status.h"

namespace kimdb {
namespace exec {

/// One row flowing through an operator tree. Object-model operators fill
/// `oid` (and `obj` when the producer already materialized the object, so
/// consumers never re-fetch what a scan just decoded); relational operators
/// fill `tuple`. A Row is cheap to move, never to copy implicitly.
struct Row {
  Oid oid = kNilOid;
  std::optional<Object> obj;        // set by extent scans, not index scans
  std::vector<Value> tuple;         // set by relational operators
};

/// Pull-based (Volcano) operator: Open prepares state, Next produces rows
/// one at a time until it returns false, Close releases resources. The
/// same ExecContext is threaded through all three calls and shared by the
/// whole tree; operators account their work on its counters.
///
/// Lifecycle contract: Open exactly once, Next until false/error, Close
/// exactly once (also after an error -- drivers must always Close so
/// parallel operators can join their workers).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Fills *row and returns true, or returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* row) = 0;
  virtual void Close(ExecContext* ctx) = 0;

  /// One-line self-description for EXPLAIN ("ExtentScan(Vehicle)").
  virtual std::string Describe() const = 0;
  /// Child operators, for EXPLAIN tree rendering.
  virtual std::vector<const Operator*> children() const { return {}; }
};

/// Renders the operator tree rooted at `root` with two-space indentation:
///
///   Filter(Weight > 7500)
///     HierarchyScan(Vehicle)
///       ExtentScan(Vehicle)
///       ExtentScan(Truck)
std::string ExplainTree(const Operator& root);

/// Drives a tree to completion, handing every row to `fn`. Always Closes,
/// including on error paths.
Status ForEachRow(Operator& root, ExecContext* ctx,
                  const std::function<Status(Row&)>& fn);

/// Drives a tree to completion collecting the OIDs it produces (the
/// object-model result shape).
Result<std::vector<Oid>> CollectOids(Operator& root, ExecContext* ctx);

}  // namespace exec
}  // namespace kimdb

#endif  // KIMDB_EXEC_OPERATOR_H_
