#ifndef KIMDB_EXEC_OPERATORS_H_
#define KIMDB_EXEC_OPERATORS_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "index/index_manager.h"
#include "object/object_store.h"

namespace kimdb {
namespace exec {

// MatchFn (the query layer's predicate hook) lives in exec/operator.h next
// to the AcceptBatchResidual fusion hook it parameterizes.

/// Scans the extent of exactly one class, page by page, producing
/// materialized objects. Polls the budget at page granularity.
///
/// Under an armed snapshot (ExecContext::snapshot_active) every decoded
/// record is resolved against the store's MVCC version table: records
/// updated after the snapshot emit their visible version instead of the
/// heap image, records born after (or deleted before) it are skipped, and
/// an end-of-scan ghost pass emits visible versions whose heap record
/// moved or vanished mid-scan (deduplicated through the seen-OID set).
class ExtentScan : public Operator {
 public:
  ExtentScan(const ObjectStore* store, ClassId cls, std::string class_name)
      : store_(store), cls_(cls), name_(std::move(class_name)) {}

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* row) override;
  Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                               size_t max) override;
  void CloseImpl(ExecContext* ctx) override;
  std::string Describe() const override { return "ExtentScan(" + name_ + ")"; }
  bool AcceptBatchResidual(const MatchFn* pred) override {
    residual_ = pred;
    return true;
  }

 private:
  const ObjectStore* store_;
  ClassId cls_;
  std::string name_;
  const MatchFn* residual_ = nullptr;  // fused predicate (batch mode only)
  std::vector<PageId> pages_;
  size_t page_idx_ = 0;
  size_t ra_pos_ = 0;  // first extent page not yet staged via ReadAhead
  std::vector<Object> buf_;  // decoded objects of the current page
  size_t buf_pos_ = 0;
  // Snapshot-mode state (unused when no snapshot is armed).
  std::unordered_set<Oid> seen_;  // OIDs already emitted from heap pages
  std::vector<std::pair<Oid, std::shared_ptr<const Object>>> ghosts_;
  size_t ghost_pos_ = 0;
  bool ghost_done_ = false;
};

/// Union of the extents of a class and its subclasses (the paper's
/// class-hierarchy scope, §3.2): children are scanned in catalog Subtree
/// order, preserving the serial engine's result order.
class HierarchyScan : public Operator {
 public:
  HierarchyScan(std::string root_name,
                std::vector<std::unique_ptr<ExtentScan>> extents)
      : root_name_(std::move(root_name)), extents_(std::move(extents)) {}

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* row) override;
  Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                               size_t max) override;
  void CloseImpl(ExecContext* ctx) override;
  std::string Describe() const override {
    return "HierarchyScan(" + root_name_ + ")";
  }
  bool AcceptBatchResidual(const MatchFn* pred) override;
  std::vector<const Operator*> children() const override;

 private:
  std::string root_name_;
  std::vector<std::unique_ptr<ExtentScan>> extents_;
  size_t cur_ = 0;
};

/// Produces the (deduplicated, sorted) candidate OIDs of one index lookup:
/// equality or range, over a single-class / class-hierarchy / nested index.
/// Candidates carry no object; a Filter above fetches when it must.
class IndexScan : public Operator {
 public:
  struct Spec {
    IndexId index_id = 0;
    std::vector<std::string> path;
    std::optional<Value> eq_key;
    std::optional<Value> lo, hi;
    bool lo_inclusive = true, hi_inclusive = true;
    ClassId scope_class = kInvalidClassId;
    bool hierarchy_scope = true;
  };

  IndexScan(const IndexManager* indexes, Spec spec)
      : indexes_(indexes), spec_(std::move(spec)) {}

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* row) override;
  Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                               size_t max) override;
  void CloseImpl(ExecContext* ctx) override;
  std::string Describe() const override;

  /// Renders the one-line EXPLAIN form of `spec` without an operator
  /// instance (QueryPlan::ToString shares the exact executed-tree shape).
  static std::string DescribeSpec(const Spec& spec);

 private:
  const IndexManager* indexes_;
  Spec spec_;
  std::vector<Oid> candidates_;
  size_t pos_ = 0;
};

/// Applies a residual predicate. In the row-at-a-time path, rows that
/// arrive without a materialized object (index candidates) are
/// point-fetched first; rows a scan already decoded are evaluated in
/// place. The batched path is leaner twice over: a scan child that
/// accepts AcceptBatchResidual evaluates the predicate inside its own
/// page buffer (fusion -- NextBatch then just relays slabs), and index
/// candidates are checked against the shared resident image without ever
/// copying the object into the row (late materialization). OIDs whose
/// objects vanished between index read and fetch are skipped either way,
/// matching the serial engine.
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, const ObjectStore* store,
         MatchFn pred, std::string pred_text)
      : child_(std::move(child)),
        store_(store),
        pred_(std::move(pred)),
        pred_text_(std::move(pred_text)) {}

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* row) override;
  Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                               size_t max) override;
  void CloseImpl(ExecContext* ctx) override;
  std::string Describe() const override {
    return "Filter(" + pred_text_ + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  /// Fetches the row's object if the child delivered only an OID; sets
  /// `*skip` for candidates that vanished since the index probe (expected
  /// churn) instead of failing the query.
  Status MaterializeRow(ExecContext* ctx, Row* row, bool* skip);

  std::unique_ptr<Operator> child_;
  const ObjectStore* store_;
  MatchFn pred_;
  std::string pred_text_;
  std::vector<PageId> prefetch_;   // scratch: pages of unmaterialized rows
  // Stage candidate pages for the next batch? Armed only after a batch
  // missed the object cache: a warm query then never pays the per-row
  // directory lookups (there is nothing to hide them behind), while a cold
  // one pays synchronous misses for its first batch only -- exactly what
  // row-at-a-time execution pays for every row.
  bool prefetch_armed_ = false;
  // Did the child accept pred_ for in-scan evaluation at Open? Batches
  // then arrive pre-filtered and NextBatchImpl just relays them.
  bool fused_ = false;
};

/// Partitions the extent pages of the classes in scope into contiguous
/// ranges and scans them from a small worker pool, evaluating the pushed-
/// down predicate inside the workers (so matching -- the expensive part of
/// a cold scan -- parallelizes too). Matching OIDs flow to the consumer
/// through a bounded queue; row order is therefore nondeterministic, but
/// the produced *set* equals the serial scan's. Workers poll the budget at
/// page granularity and the first real worker error is surfaced by Next.
///
/// Snapshot mode mirrors ExtentScan: workers resolve each decoded record
/// against the MVCC table (evaluating the predicate on the visible version)
/// and the consumer runs the seen-set-deduplicated ghost pass once the
/// workers drain.
class ParallelExtentScan : public Operator {
 public:
  /// `classes` are (id, name) pairs in scope order; `pred` may be null for
  /// an unfiltered scan.
  ParallelExtentScan(const ObjectStore* store,
                     std::vector<std::pair<ClassId, std::string>> classes,
                     size_t n_workers, MatchFn pred, std::string pred_text)
      : store_(store),
        classes_(std::move(classes)),
        n_workers_(n_workers == 0 ? 1 : n_workers),
        pred_(std::move(pred)),
        pred_text_(std::move(pred_text)) {}

  ~ParallelExtentScan() override { Shutdown(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* row) override;
  Result<size_t> NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                               size_t max) override;
  void CloseImpl(ExecContext* ctx) override;
  std::string Describe() const override;

 private:
  struct Unit {
    ClassId cls;
    PageId page;
  };

  void WorkerLoop(ExecContext* ctx, size_t begin, size_t end);
  /// Appends one page's matches under a single lock (per-OID handoff costs
  /// a mutex + condvar round-trip per row, which dominates a fast scan).
  /// Blocks while the queue is full; false once the scan is shutting down.
  bool PushBatch(std::vector<Oid>* batch);
  void Shutdown();

  static constexpr size_t kQueueCapacity = 4096;

  const ObjectStore* store_;
  std::vector<std::pair<ClassId, std::string>> classes_;
  size_t n_workers_;
  MatchFn pred_;
  std::string pred_text_;

  std::vector<Unit> units_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};

  std::mutex mu_;
  std::condition_variable cv_rows_;   // consumer waits for rows/finish
  std::condition_variable cv_space_;  // workers wait for queue space
  std::deque<Oid> queue_;
  size_t active_workers_ = 0;
  Status worker_error_;
  std::vector<Oid> out_buf_;  // consumer-side drain buffer (no lock needed)
  size_t out_pos_ = 0;
  // Snapshot-mode state, consumer-side only (unused without a snapshot).
  std::unordered_set<Oid> seen_;
  std::vector<std::pair<Oid, std::shared_ptr<const Object>>> ghosts_;
  size_t ghost_pos_ = 0;
  bool ghost_done_ = false;
};

}  // namespace exec
}  // namespace kimdb

#endif  // KIMDB_EXEC_OPERATORS_H_
