#include "exec/operators.h"

#include <algorithm>
#include <iterator>

namespace kimdb {
namespace exec {

// --- ExtentScan -------------------------------------------------------------

Status ExtentScan::OpenImpl(ExecContext* ctx) {
  residual_ = nullptr;  // a fusing parent re-offers its predicate after Open
  KIMDB_ASSIGN_OR_RETURN(pages_, store_->ExtentPages(cls_));
  page_idx_ = 0;
  ra_pos_ = 0;
  buf_.clear();
  buf_pos_ = 0;
  seen_.clear();
  ghosts_.clear();
  ghost_pos_ = 0;
  ghost_done_ = false;
  ctx->Trace("ExtentScan(" + name_ + "): open, " +
             std::to_string(pages_.size()) + " page(s)");
  return Status::OK();
}

Result<bool> ExtentScan::NextImpl(ExecContext* ctx, Row* row) {
  const MvccTable* mvcc = store_->mvcc();
  const bool snap = ctx->snapshot_active() && mvcc != nullptr;
  const uint64_t read_ts = ctx->snapshot_ts();
  while (buf_pos_ >= buf_.size()) {
    if (page_idx_ >= pages_.size()) {
      // Ghost pass: versions visible at the snapshot whose heap record was
      // deleted, or moved to a page this scan had already passed. The
      // seen-set keeps records the heap pass emitted from repeating.
      if (snap && !ghost_done_) {
        ghosts_ = mvcc->CollectVisible(cls_, read_ts);
        ghost_pos_ = 0;
        ghost_done_ = true;
      }
      while (ghost_pos_ < ghosts_.size()) {
        auto& [oid, image] = ghosts_[ghost_pos_++];
        if (seen_.count(oid) > 0) continue;
        ctx->objects_scanned.fetch_add(1, std::memory_order_relaxed);
        row->oid = oid;
        row->obj = *image;
        row->tuple.clear();
        return true;
      }
      return false;
    }
    KIMDB_RETURN_IF_ERROR(ctx->CheckBudget());
    if (page_idx_ >= ra_pos_) {
      // Stage the next window of extent pages before pinning them.
      BufferPool* bp = store_->buffer_pool();
      size_t ra_end =
          std::min(pages_.size(), page_idx_ + bp->readahead_window());
      bp->ReadAhead(std::span<const PageId>(pages_.data() + page_idx_,
                                            ra_end - page_idx_));
      ra_pos_ = ra_end;
    }
    buf_.clear();
    buf_pos_ = 0;
    size_t decoded = 0;
    KIMDB_RETURN_IF_ERROR(store_->ForEachInClassOnPage(
        cls_, pages_[page_idx_++], [&](Object& obj) {
          ++decoded;
          if (snap) {
            // Decode-then-resolve: the heap image is authoritative only
            // when no version chain exists; otherwise the chain decides
            // what (if anything) this snapshot sees.
            std::shared_ptr<const Object> image;
            switch (mvcc->Resolve(obj.oid(), read_ts, &image)) {
              case MvccLookup::kNoChain:
                break;
              case MvccLookup::kImage:
                obj = *image;
                break;
              case MvccLookup::kInvisible:
                return Status::OK();
            }
            // Also dedups a record decoded twice because it moved pages
            // mid-scan.
            if (!seen_.insert(obj.oid()).second) return Status::OK();
          }
          buf_.push_back(std::move(obj));
          return Status::OK();
        }));
    ctx->objects_scanned.fetch_add(decoded, std::memory_order_relaxed);
  }
  Object& obj = buf_[buf_pos_++];
  row->oid = obj.oid();
  row->obj = std::move(obj);
  row->tuple.clear();
  return true;
}

Result<size_t> ExtentScan::NextBatchImpl(ExecContext* ctx,
                                         std::vector<Row>* out, size_t max) {
  while (out->size() < max) {
    if (buf_pos_ < buf_.size()) {
      // Bulk-move the rest of the decoded page buffer: one NextImpl call
      // paid the page pin + MVCC resolution for all of these rows already.
      // A fused predicate runs here, against the buffer entry, so a
      // non-matching object is never moved into the batch at all.
      size_t take = std::min(max - out->size(), buf_.size() - buf_pos_);
      for (size_t i = 0; i < take; ++i) {
        Object& obj = buf_[buf_pos_++];
        if (residual_ != nullptr) {
          KIMDB_ASSIGN_OR_RETURN(bool match, (*residual_)(obj, ctx));
          if (!match) continue;
          // Fused consumers read OIDs (late materialization): the match
          // stays in the page buffer instead of moving into the batch.
          out->emplace_back().oid = obj.oid();
          continue;
        }
        Row& row = out->emplace_back();
        row.oid = obj.oid();
        row.obj = std::move(obj);
      }
      continue;
    }
    // Page advance / ghost pass: NextImpl refills the buffer (or emits one
    // ghost row) with the full snapshot-resolution discipline.
    Row row;
    KIMDB_ASSIGN_OR_RETURN(bool more, NextImpl(ctx, &row));
    if (!more) break;
    if (residual_ != nullptr) {
      KIMDB_ASSIGN_OR_RETURN(bool match, (*residual_)(*row.obj, ctx));
      if (!match) continue;
      out->emplace_back().oid = row.oid;
      continue;
    }
    out->push_back(std::move(row));
  }
  return out->size();
}

void ExtentScan::CloseImpl(ExecContext*) {
  pages_.clear();
  buf_.clear();
  seen_.clear();
  ghosts_.clear();
}

// --- HierarchyScan ----------------------------------------------------------

Status HierarchyScan::OpenImpl(ExecContext* ctx) {
  cur_ = 0;
  for (auto& scan : extents_) {
    KIMDB_RETURN_IF_ERROR(scan->Open(ctx));
  }
  return Status::OK();
}

Result<bool> HierarchyScan::NextImpl(ExecContext* ctx, Row* row) {
  while (cur_ < extents_.size()) {
    KIMDB_ASSIGN_OR_RETURN(bool more, extents_[cur_]->Next(ctx, row));
    if (more) return true;
    ++cur_;
  }
  return false;
}

Result<size_t> HierarchyScan::NextBatchImpl(ExecContext* ctx,
                                            std::vector<Row>* out,
                                            size_t max) {
  (void)max;  // children read the batch size off the context
  while (cur_ < extents_.size()) {
    KIMDB_ASSIGN_OR_RETURN(size_t n, extents_[cur_]->NextBatch(ctx, out));
    if (n > 0) return n;
    ++cur_;
  }
  return 0;
}

void HierarchyScan::CloseImpl(ExecContext* ctx) {
  for (auto& scan : extents_) scan->Close(ctx);
}

bool HierarchyScan::AcceptBatchResidual(const MatchFn* pred) {
  // Every child is an ExtentScan and accepts; fold defensively anyway --
  // a partially-fused hierarchy would still be correct (the Filter above
  // re-checks whatever reaches it when fusion is off) but never fast.
  bool all = true;
  for (auto& scan : extents_) all = scan->AcceptBatchResidual(pred) && all;
  return all;
}

std::vector<const Operator*> HierarchyScan::children() const {
  std::vector<const Operator*> out;
  out.reserve(extents_.size());
  for (const auto& scan : extents_) out.push_back(scan.get());
  return out;
}

// --- IndexScan --------------------------------------------------------------

Status IndexScan::OpenImpl(ExecContext* ctx) {
  candidates_.clear();
  pos_ = 0;
  KIMDB_ASSIGN_OR_RETURN(const IndexInfo* info,
                         indexes_->GetIndex(spec_.index_id));
  ctx->used_index.store(true, std::memory_order_relaxed);
  ctx->index_probes.fetch_add(1, std::memory_order_relaxed);
  if (spec_.eq_key.has_value()) {
    KIMDB_RETURN_IF_ERROR(indexes_->LookupEq(*info, *spec_.eq_key,
                                             spec_.scope_class,
                                             spec_.hierarchy_scope,
                                             &candidates_));
  } else {
    KIMDB_RETURN_IF_ERROR(indexes_->LookupRange(
        *info, spec_.lo, spec_.lo_inclusive, spec_.hi, spec_.hi_inclusive,
        spec_.scope_class, spec_.hierarchy_scope, &candidates_));
  }
  // A nested index can report one object once per satisfying path.
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());
  ctx->index_candidates.fetch_add(candidates_.size(),
                                  std::memory_order_relaxed);
  ctx->Trace(Describe() + ": " + std::to_string(candidates_.size()) +
             " candidate(s)");
  return Status::OK();
}

Result<bool> IndexScan::NextImpl(ExecContext* ctx, Row* row) {
  if (pos_ >= candidates_.size()) return false;
  KIMDB_RETURN_IF_ERROR(ctx->CheckBudget());
  row->oid = candidates_[pos_++];
  row->obj.reset();
  row->tuple.clear();
  return true;
}

Result<size_t> IndexScan::NextBatchImpl(ExecContext* ctx,
                                        std::vector<Row>* out, size_t max) {
  if (pos_ >= candidates_.size()) return 0;
  // One budget poll covers the whole slice of the candidate vector.
  KIMDB_RETURN_IF_ERROR(ctx->CheckBudget());
  size_t take = std::min(max, candidates_.size() - pos_);
  for (size_t i = 0; i < take; ++i) {
    out->emplace_back().oid = candidates_[pos_++];
  }
  return out->size();
}

void IndexScan::CloseImpl(ExecContext*) { candidates_.clear(); }

std::string IndexScan::DescribeSpec(const Spec& spec) {
  std::string path;
  for (size_t i = 0; i < spec.path.size(); ++i) {
    if (i > 0) path += ".";
    path += spec.path[i];
  }
  std::string out = "IndexScan(path=" + path;
  if (spec.eq_key.has_value()) {
    out += ", key=" + spec.eq_key->ToString();
  } else {
    out += ", range=";
    out += spec.lo.has_value()
               ? (spec.lo_inclusive ? "[" : "(") + spec.lo->ToString()
               : "(-inf";
    out += ", ";
    out += spec.hi.has_value()
               ? spec.hi->ToString() + (spec.hi_inclusive ? "]" : ")")
               : "+inf)";
  }
  out += spec.hierarchy_scope ? ", scope=hierarchy" : ", scope=class";
  return out + ")";
}

std::string IndexScan::Describe() const { return DescribeSpec(spec_); }

// --- Filter -----------------------------------------------------------------

Status Filter::OpenImpl(ExecContext* ctx) {
  prefetch_armed_ = false;
  KIMDB_RETURN_IF_ERROR(child_->Open(ctx));
  // Fuse the predicate into a batched scan child: rows then arrive
  // pre-filtered and NextBatchImpl just relays slabs. Off under EXPLAIN
  // ANALYZE so per-operator row counts keep their unfused meaning (the
  // scan's span reports objects scanned, this one's rows that passed).
  fused_ = ctx->batch_size() > 1 && !ctx->analyze_enabled() &&
           child_->AcceptBatchResidual(&pred_);
  return Status::OK();
}

Status Filter::MaterializeRow(ExecContext* ctx, Row* row, bool* skip) {
  *skip = false;
  if (row->obj.has_value()) return Status::OK();
  ctx->objects_fetched.fetch_add(1, std::memory_order_relaxed);
  bool cache_hit = false;
  // Snapshot fetches resolve to the version visible at read_ts; an
  // object invisible at the snapshot comes back NotFound and is
  // skipped exactly like a deleted index candidate.
  Result<Object> obj =
      ctx->snapshot_active()
          ? store_->GetSnapshot(row->oid, ctx->snapshot_ts(), &cache_hit)
          : store_->Get(row->oid, &cache_hit);
  (cache_hit ? ctx->obj_cache_hits : ctx->obj_cache_misses)
      .fetch_add(1, std::memory_order_relaxed);
  if (!obj.ok()) {
    // An index candidate deleted since the probe is expected churn;
    // anything else (I/O failure, corruption) must surface, not
    // silently drop result rows.
    if (obj.status().IsNotFound()) {
      *skip = true;
      return Status::OK();
    }
    return obj.status();
  }
  row->obj = std::move(*obj);
  return Status::OK();
}

Result<bool> Filter::NextImpl(ExecContext* ctx, Row* row) {
  while (true) {
    KIMDB_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
    if (!more) return false;
    bool skip = false;
    KIMDB_RETURN_IF_ERROR(MaterializeRow(ctx, row, &skip));
    if (skip) continue;
    KIMDB_ASSIGN_OR_RETURN(bool match, pred_(*row->obj, ctx));
    if (match) return true;
  }
}

Result<size_t> Filter::NextBatchImpl(ExecContext* ctx, std::vector<Row>* out,
                                     size_t max) {
  (void)max;  // bounded by the child's batch size
  if (fused_) {
    // The scan applied pred_ before a row ever left its page buffer. The
    // hop memo's batch scope is this relay call.
    ctx->ClearHopMemo();
    return child_->NextBatch(ctx, out);
  }
  while (true) {
    ctx->ClearHopMemo();
    // The child fills `out` directly and survivors compact toward the
    // front, so a matching row moves at most once -- and a batch where
    // everything matches not at all. Staging through a side buffer would
    // move every row twice, which dominates a warm scan (Row carries an
    // inline Object).
    KIMDB_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(ctx, out));
    if (n == 0) return 0;
    // Residual-fetch prefetch: index candidates arrive as bare OIDs whose
    // heap pages the scan never touched. Stage every page of the batch
    // through one ReadAhead before the first point fetch, so the fetches
    // hit staged frames instead of paying a synchronous miss each. On a
    // warm object cache the fetches never reach a page at all, so staging
    // stays armed only while batches keep missing the cache.
    if (prefetch_armed_) {
      prefetch_.clear();
      for (const Row& row : *out) {
        if (row.obj.has_value()) continue;
        Result<RecordId> rid = store_->DirectoryLookup(row.oid);
        if (rid.ok()) prefetch_.push_back(rid->page_id);
      }
      if (prefetch_.size() > 1) {
        std::sort(prefetch_.begin(), prefetch_.end());
        prefetch_.erase(std::unique(prefetch_.begin(), prefetch_.end()),
                        prefetch_.end());
        store_->buffer_pool()->ReadAhead(prefetch_);
      }
    }
    const uint64_t misses_before =
        ctx->obj_cache_misses.load(std::memory_order_relaxed);
    size_t keep = 0;
    for (size_t i = 0; i < out->size(); ++i) {
      Row& row = (*out)[i];
      bool match = false;
      if (row.obj.has_value()) {
        KIMDB_ASSIGN_OR_RETURN(match, pred_(*row.obj, ctx));
      } else {
        // Late materialization: evaluate an index candidate against the
        // shared resident image -- no per-row Object copy; the row passes
        // downstream as a bare OID (see the Row contract in operator.h).
        ctx->objects_fetched.fetch_add(1, std::memory_order_relaxed);
        bool cache_hit = false;
        Result<std::shared_ptr<const Object>> shared =
            ctx->snapshot_active()
                ? store_->GetSharedSnapshot(row.oid, ctx->snapshot_ts(),
                                            &cache_hit)
                : store_->GetShared(row.oid, &cache_hit);
        (cache_hit ? ctx->obj_cache_hits : ctx->obj_cache_misses)
            .fetch_add(1, std::memory_order_relaxed);
        if (!shared.ok()) {
          // Deleted since the index probe: expected churn, like NextImpl.
          if (shared.status().IsNotFound()) continue;
          return shared.status();
        }
        KIMDB_ASSIGN_OR_RETURN(match, pred_(**shared, ctx));
      }
      if (!match) continue;
      if (keep != i) (*out)[keep] = std::move(row);
      ++keep;
    }
    prefetch_armed_ =
        ctx->obj_cache_misses.load(std::memory_order_relaxed) !=
        misses_before;
    if (keep > 0) {
      out->resize(keep);
      return keep;
    }
    // Whole batch filtered out: loop for the next one (the child's
    // NextBatch shell clears `out` again).
  }
}

void Filter::CloseImpl(ExecContext* ctx) {
  prefetch_.clear();
  child_->Close(ctx);
}

// --- ParallelExtentScan -----------------------------------------------------

Status ParallelExtentScan::OpenImpl(ExecContext* ctx) {
  Shutdown();  // re-open support: tear down any previous run
  units_.clear();
  queue_.clear();
  out_buf_.clear();
  out_pos_ = 0;
  seen_.clear();
  ghosts_.clear();
  ghost_pos_ = 0;
  ghost_done_ = false;
  worker_error_ = Status::OK();
  stop_.store(false, std::memory_order_release);

  for (const auto& [cls, name] : classes_) {
    KIMDB_ASSIGN_OR_RETURN(std::vector<PageId> pages,
                           store_->ExtentPages(cls));
    for (PageId p : pages) units_.push_back(Unit{cls, p});
  }
  size_t n = std::min(n_workers_, std::max<size_t>(1, units_.size()));
  ctx->Trace(Describe() + ": open, " + std::to_string(units_.size()) +
             " page(s) across " + std::to_string(n) + " worker(s)");
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_workers_ = n;
  }
  size_t chunk = (units_.size() + n - 1) / n;
  for (size_t w = 0; w < n; ++w) {
    size_t begin = std::min(units_.size(), w * chunk);
    size_t end = std::min(units_.size(), begin + chunk);
    threads_.emplace_back(&ParallelExtentScan::WorkerLoop, this, ctx, begin,
                          end);
  }
  return Status::OK();
}

void ParallelExtentScan::WorkerLoop(ExecContext* ctx, size_t begin,
                                    size_t end) {
  // Counters accumulate on a worker-private shadow context and flush once
  // at exit: with several workers doing per-object fetch_adds, the shared
  // counter cache lines ping-pong between cores and eat the scan speedup.
  // Budget / cancellation state stays on the real context.
  ExecContext shadow;
  const MvccTable* mvcc = store_->mvcc();
  const bool snap = ctx->snapshot_active() && mvcc != nullptr;
  const uint64_t read_ts = ctx->snapshot_ts();
  // The predicate hook reads visibility off the context it evaluates
  // under, so the shadow must carry the snapshot too (path hops).
  if (snap) shadow.set_snapshot(read_ts);
  std::vector<Oid> batch;
  BufferPool* bp = store_->buffer_pool();
  const size_t window = bp->readahead_window();
  size_t ra_pos = begin;  // first unit of this range not yet staged
  std::vector<PageId> ahead;
  Status st;
  for (size_t i = begin; i < end && st.ok(); ++i) {
    const Unit& unit = units_[i];
    st = ctx->CheckBudget();
    if (!st.ok()) break;
    if (i >= ra_pos) {
      // Each worker stages the next window of its own page range.
      size_t ra_end = std::min(end, i + window);
      ahead.clear();
      for (size_t j = i; j < ra_end; ++j) ahead.push_back(units_[j].page);
      bp->ReadAhead(ahead);
      ra_pos = ra_end;
    }
    batch.clear();
    st = store_->ForEachInClassOnPage(
        unit.cls, unit.page, [&](const Object& obj) -> Status {
          if (stop_.load(std::memory_order_acquire)) {
            return Status::Aborted("scan closed");
          }
          shadow.objects_scanned.fetch_add(1, std::memory_order_relaxed);
          // Decode-then-resolve (see ExtentScan): the version chain, not
          // the heap image, decides what the snapshot sees.
          const Object* eval_obj = &obj;
          std::shared_ptr<const Object> image;
          if (snap) {
            switch (mvcc->Resolve(obj.oid(), read_ts, &image)) {
              case MvccLookup::kNoChain:
                break;
              case MvccLookup::kImage:
                eval_obj = image.get();
                break;
              case MvccLookup::kInvisible:
                return Status::OK();
            }
          }
          bool match = true;
          if (pred_) {
            KIMDB_ASSIGN_OR_RETURN(match, pred_(*eval_obj, &shadow));
          }
          if (match) batch.push_back(eval_obj->oid());
          return Status::OK();
        });
    if (st.ok() && !batch.empty() && !PushBatch(&batch)) {
      st = Status::Aborted("scan closed");
    }
  }
  shadow.FlushCountersInto(ctx);
  std::lock_guard<std::mutex> lock(mu_);
  // An Aborted status only reflects Close() racing the scan, not a fault.
  if (!st.ok() && !st.IsAborted() && worker_error_.ok()) {
    worker_error_ = st;
  }
  --active_workers_;
  cv_rows_.notify_all();
}

bool ParallelExtentScan::PushBatch(std::vector<Oid>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  // A batch (one page's matches) may overshoot the capacity; the bound is
  // on when a worker may *start* appending, which is all a backpressure
  // limit needs.
  cv_space_.wait(lock, [&] {
    return queue_.size() < kQueueCapacity ||
           stop_.load(std::memory_order_acquire);
  });
  if (stop_.load(std::memory_order_acquire)) return false;
  queue_.insert(queue_.end(), batch->begin(), batch->end());
  cv_rows_.notify_one();
  return true;
}

Result<bool> ParallelExtentScan::NextImpl(ExecContext* ctx, Row* row) {
  const MvccTable* mvcc = store_->mvcc();
  const bool snap = ctx->snapshot_active() && mvcc != nullptr;
  while (true) {
    if (out_pos_ >= out_buf_.size()) {
      // Drain everything queued in one lock acquisition; the consumer then
      // serves rows lock-free until the buffer runs dry.
      std::unique_lock<std::mutex> lock(mu_);
      cv_rows_.wait(lock, [&] {
        return !queue_.empty() || active_workers_ == 0 || !worker_error_.ok();
      });
      if (!worker_error_.ok()) return worker_error_;
      out_buf_.assign(queue_.begin(), queue_.end());
      out_pos_ = 0;
      queue_.clear();
      lock.unlock();
      cv_space_.notify_all();
      if (out_buf_.empty()) {
        // Workers drained. Under a snapshot, finish with the ghost pass:
        // visible versions whose heap record moved or vanished mid-scan,
        // deduplicated against everything already emitted and run through
        // the same predicate the workers applied.
        if (snap && !ghost_done_) {
          for (const auto& [cls, name] : classes_) {
            auto vis = mvcc->CollectVisible(cls, ctx->snapshot_ts());
            ghosts_.insert(ghosts_.end(),
                           std::make_move_iterator(vis.begin()),
                           std::make_move_iterator(vis.end()));
          }
          ghost_pos_ = 0;
          ghost_done_ = true;
        }
        while (ghost_pos_ < ghosts_.size()) {
          auto& [oid, image] = ghosts_[ghost_pos_++];
          if (seen_.count(oid) > 0) continue;
          if (pred_) {
            KIMDB_ASSIGN_OR_RETURN(bool match, pred_(*image, ctx));
            if (!match) continue;
          }
          seen_.insert(oid);
          row->oid = oid;
          row->obj = *image;
          row->tuple.clear();
          return true;
        }
        return false;
      }
    }
    Oid oid = out_buf_[out_pos_++];
    // Dedup against a record decoded twice because it moved pages mid-scan
    // (only possible -- and only tracked -- when a snapshot is armed).
    if (snap && !seen_.insert(oid).second) continue;
    row->oid = oid;
    row->obj.reset();
    row->tuple.clear();
    return true;
  }
}

Result<size_t> ParallelExtentScan::NextBatchImpl(ExecContext* ctx,
                                                 std::vector<Row>* out,
                                                 size_t max) {
  const bool snap = ctx->snapshot_active() && store_->mvcc() != nullptr;
  if (snap) {
    // Snapshot mode interleaves seen-set dedup and the ghost pass; the
    // row-at-a-time path already implements that discipline exactly.
    return Operator::NextBatchImpl(ctx, out, max);
  }
  while (out->size() < max) {
    if (out_pos_ >= out_buf_.size()) {
      // Never block on the workers while rows are already in hand: a
      // short batch keeps the consumer busy instead of idling on the
      // condvar until a full one accumulates.
      if (!out->empty()) break;
      std::unique_lock<std::mutex> lock(mu_);
      cv_rows_.wait(lock, [&] {
        return !queue_.empty() || active_workers_ == 0 || !worker_error_.ok();
      });
      if (!worker_error_.ok()) return worker_error_;
      out_buf_.assign(queue_.begin(), queue_.end());
      out_pos_ = 0;
      queue_.clear();
      lock.unlock();
      cv_space_.notify_all();
      if (out_buf_.empty()) break;  // workers drained; no ghosts without snap
    }
    size_t take = std::min(max - out->size(), out_buf_.size() - out_pos_);
    for (size_t i = 0; i < take; ++i) {
      out->emplace_back().oid = out_buf_[out_pos_++];
    }
  }
  return out->size();
}

void ParallelExtentScan::CloseImpl(ExecContext* ctx) {
  Shutdown();
  ctx->Trace(Describe() + ": close");
}

void ParallelExtentScan::Shutdown() {
  stop_.store(true, std::memory_order_release);
  cv_space_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  queue_.clear();
  out_buf_.clear();
  out_pos_ = 0;
  seen_.clear();
  ghosts_.clear();
  ghost_pos_ = 0;
  ghost_done_ = false;
}

std::string ParallelExtentScan::Describe() const {
  std::string names;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) names += ", ";
    names += classes_[i].second;
  }
  std::string out =
      "ParallelExtentScan(" + names + ", workers=" + std::to_string(n_workers_);
  if (pred_) out += ", pred=" + pred_text_;
  return out + ")";
}

}  // namespace exec
}  // namespace kimdb
