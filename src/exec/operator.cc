#include "exec/operator.h"

namespace kimdb {
namespace exec {

namespace {

void RenderTree(const Operator& op, size_t depth, std::string* out) {
  out->append(depth * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    RenderTree(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainTree(const Operator& root) {
  std::string out;
  RenderTree(root, 0, &out);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Status ForEachRow(Operator& root, ExecContext* ctx,
                  const std::function<Status(Row&)>& fn) {
  Status st = root.Open(ctx);
  if (st.ok()) {
    Row row;
    while (true) {
      Result<bool> more = root.Next(ctx, &row);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!*more) break;
      st = fn(row);
      if (!st.ok()) break;
    }
  }
  root.Close(ctx);
  return st;
}

Result<std::vector<Oid>> CollectOids(Operator& root, ExecContext* ctx) {
  std::vector<Oid> out;
  KIMDB_RETURN_IF_ERROR(ForEachRow(root, ctx, [&](Row& row) {
    out.push_back(row.oid);
    return Status::OK();
  }));
  return out;
}

}  // namespace exec
}  // namespace kimdb
