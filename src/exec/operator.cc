#include "exec/operator.h"

#include <cinttypes>
#include <cstdio>

namespace kimdb {
namespace exec {

namespace {

void RenderTree(const Operator& op, size_t depth, bool analyze,
                std::string* out) {
  out->append(depth * 2, ' ');
  out->append(op.Describe());
  // Planner estimates (cost-based plans only). In EXPLAIN they are the
  // whole annotation; in EXPLAIN ANALYZE they lead the span so estimated
  // and actual cardinality sit side by side.
  if (op.has_estimates()) {
    char ebuf[96];
    int en;
    if (op.est_cost() >= 0) {
      en = std::snprintf(ebuf, sizeof(ebuf), " (est_rows=%" PRIu64
                         " est_cost=%.1f",
                         op.est_rows(), op.est_cost());
    } else {
      en = std::snprintf(ebuf, sizeof(ebuf), " (est_rows=%" PRIu64,
                         op.est_rows());
    }
    if (en > 0 && static_cast<size_t>(en) < sizeof(ebuf)) {
      std::snprintf(ebuf + en, sizeof(ebuf) - en, analyze ? "" : ")");
    }
    out->append(ebuf);
  }
  if (analyze) {
    const OpStats& s = op.stats();
    char buf[224];
    int n = std::snprintf(buf, sizeof(buf),
                          "%s" "rows=%" PRIu64 " loops=%" PRIu64
                          " time=%.2fms pages=%" PRIu64 "+%" PRIu64,
                          op.has_estimates() ? " " : " (", s.rows, s.loops,
                          static_cast<double>(s.time_ns) / 1e6, s.pages_hit,
                          s.pages_missed);
    if (s.pages_readahead > 0 && n > 0 &&
        static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(buf + n, sizeof(buf) - n, " ra=%" PRIu64,
                         s.pages_readahead);
    }
    // Object-cache accounting, shown only where an operator point-fetched.
    if (s.obj_cache_hits + s.obj_cache_misses > 0 && n > 0 &&
        static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(buf + n, sizeof(buf) - n, " oc=%" PRIu64 "+%" PRIu64,
                         s.obj_cache_hits, s.obj_cache_misses);
    }
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      std::snprintf(buf + n, sizeof(buf) - n, ")");
    }
    out->append(buf);
  }
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    RenderTree(*child, depth + 1, analyze, out);
  }
}

std::string Render(const Operator& root, bool analyze) {
  std::string out;
  RenderTree(root, 0, analyze, &out);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace

std::string ExplainTree(const Operator& root) {
  return Render(root, /*analyze=*/false);
}

std::string ExplainAnalyzeTree(const Operator& root) {
  return Render(root, /*analyze=*/true);
}

Status ForEachRow(Operator& root, ExecContext* ctx,
                  const std::function<Status(Row&)>& fn) {
  Status st = root.Open(ctx);
  if (st.ok()) {
    Row row;
    while (true) {
      Result<bool> more = root.Next(ctx, &row);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!*more) break;
      st = fn(row);
      if (!st.ok()) break;
    }
  }
  root.Close(ctx);
  return st;
}

Status ForEachRowBatched(Operator& root, ExecContext* ctx,
                         const std::function<Status(Row&)>& fn) {
  if (ctx->batch_size() <= 1) return ForEachRow(root, ctx, fn);
  Status st = root.Open(ctx);
  if (st.ok()) {
    std::vector<Row> batch;
    batch.reserve(ctx->batch_size());
    while (true) {
      Result<size_t> n = root.NextBatch(ctx, &batch);
      if (!n.ok()) {
        st = n.status();
        break;
      }
      if (*n == 0) break;
      for (Row& row : batch) {
        st = fn(row);
        if (!st.ok()) break;
      }
      if (!st.ok()) break;
    }
  }
  root.Close(ctx);
  return st;
}

Result<std::vector<Oid>> CollectOids(Operator& root, ExecContext* ctx) {
  std::vector<Oid> out;
  KIMDB_RETURN_IF_ERROR(ForEachRowBatched(root, ctx, [&](Row& row) {
    out.push_back(row.oid);
    return Status::OK();
  }));
  return out;
}

}  // namespace exec
}  // namespace kimdb
