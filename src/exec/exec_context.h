#ifndef KIMDB_EXEC_EXEC_CONTEXT_H_
#define KIMDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/object.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace kimdb {
namespace exec {

/// Per-query execution state shared by every operator in a plan tree -- and
/// by every worker thread of a parallel operator, which is why all counters
/// are atomics. One ExecContext unifies what used to be three disjoint
/// stats surfaces (QueryStats, BufferPoolStats deltas, ad-hoc bench
/// counters), so the OODB engine, the relational comparator and the
/// benchmarks all report physical and logical work the same way.
///
/// Also carries the cross-cutting execution controls: a wall-clock budget /
/// cancellation flag that long scans poll, an optional trace buffer
/// operators append lifecycle events to, and the EXPLAIN ANALYZE switch
/// that arms per-operator span accounting (see Operator::stats()).
class ExecContext {
 public:
  ExecContext() = default;
  /// Attaching a buffer pool snapshots its counters so pages_hit() /
  /// pages_missed() report the physical work of *this* query only.
  explicit ExecContext(BufferPool* bp) : bp_(bp) {
    if (bp_ != nullptr) baseline_ = bp_->stats();
  }

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- unified counters (logical work) -------------------------------------

  std::atomic<uint64_t> objects_scanned{0};      // extent-scan candidates
  std::atomic<uint64_t> objects_fetched{0};      // directory point fetches
  std::atomic<uint64_t> index_candidates{0};     // OIDs produced by indexes
  std::atomic<uint64_t> index_probes{0};         // index lookups issued
  std::atomic<uint64_t> predicates_evaluated{0}; // top-level Matches calls
  std::atomic<uint64_t> ref_fetches{0};          // path-expression derefs
  std::atomic<uint64_t> tuples_scanned{0};       // relational rows read
  std::atomic<uint64_t> obj_cache_hits{0};       // Gets served by the cache
  std::atomic<uint64_t> obj_cache_misses{0};     // Gets that hit the heap
  std::atomic<bool> used_index{false};

  // --- optimizer outcome (set once by QueryEngine::Execute, read by the
  // metrics flush; never touched by workers) --------------------------------

  std::atomic<uint64_t> plans_considered{0};  // candidates Plan() enumerated
  std::atomic<uint64_t> index_plans_chosen{0};
  std::atomic<uint64_t> cost_based_plans{0};  // plans priced from stats
  std::atomic<uint64_t> plan_est_rows{0};     // winning plan's estimate
  std::atomic<bool> plan_has_estimate{false};
  std::atomic<uint64_t> result_rows{0};       // actual result cardinality

  /// Adds this context's logical counters into `dst`. Parallel workers
  /// accumulate on a private shadow context and flush once on exit --
  /// per-object fetch_adds on the shared context from several threads
  /// ping-pong the counter cache lines hard enough to erase the scan
  /// speedup.
  void FlushCountersInto(ExecContext* dst) const {
    constexpr auto kRelaxed = std::memory_order_relaxed;
    dst->objects_scanned.fetch_add(objects_scanned.load(kRelaxed), kRelaxed);
    dst->objects_fetched.fetch_add(objects_fetched.load(kRelaxed), kRelaxed);
    dst->index_candidates.fetch_add(index_candidates.load(kRelaxed), kRelaxed);
    dst->index_probes.fetch_add(index_probes.load(kRelaxed), kRelaxed);
    dst->predicates_evaluated.fetch_add(predicates_evaluated.load(kRelaxed),
                                        kRelaxed);
    dst->ref_fetches.fetch_add(ref_fetches.load(kRelaxed), kRelaxed);
    dst->tuples_scanned.fetch_add(tuples_scanned.load(kRelaxed), kRelaxed);
    dst->obj_cache_hits.fetch_add(obj_cache_hits.load(kRelaxed), kRelaxed);
    dst->obj_cache_misses.fetch_add(obj_cache_misses.load(kRelaxed), kRelaxed);
    if (used_index.load(kRelaxed)) dst->used_index.store(true, kRelaxed);
  }

  // --- physical counters (buffer-pool delta) -------------------------------

  uint64_t pages_hit() const {
    return bp_ == nullptr ? 0 : bp_->stats().hits - baseline_.hits;
  }
  uint64_t pages_missed() const {
    return bp_ == nullptr ? 0 : bp_->stats().misses - baseline_.misses;
  }
  uint64_t pages_readahead() const {
    return bp_ == nullptr
               ? 0
               : bp_->stats().readahead_hits - baseline_.readahead_hits;
  }

  /// Live hit/miss reading for per-operator deltas (EXPLAIN ANALYZE spans
  /// subtract two of these around each lifecycle call). Zeros without an
  /// attached pool.
  struct PageCounts {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t readahead_hits = 0;
  };
  PageCounts PageCountsNow() const {
    if (bp_ == nullptr) return PageCounts{};
    BufferPoolStats s = bp_->stats();
    return PageCounts{s.hits, s.misses, s.readahead_hits};
  }

  // --- budget / cancellation ----------------------------------------------

  /// Arms a wall-clock budget measured from now. A zero duration makes the
  /// very next CheckBudget() fail (useful for cancellation tests). May be
  /// called again to re-arm while workers poll CheckBudget concurrently:
  /// the deadline itself is atomic, so readers see either the old or the
  /// new deadline, never a torn time_point.
  void set_budget(std::chrono::nanoseconds budget) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Cooperative cancellation (e.g. a client disconnect).
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Operators poll this at page/batch granularity. Cheap when no budget
  /// is armed (two relaxed atomic loads, no clock read).
  Status CheckBudget() const {
    if (cancelled_.load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded("query cancelled");
    }
    if (has_deadline_.load(std::memory_order_acquire)) {
      auto deadline = std::chrono::steady_clock::time_point(
          std::chrono::steady_clock::duration(
              deadline_ns_.load(std::memory_order_relaxed)));
      if (std::chrono::steady_clock::now() > deadline) {
        return Status::DeadlineExceeded("query budget exceeded");
      }
    }
    return Status::OK();
  }

  // --- MVCC snapshot --------------------------------------------------------

  /// Arms multiversion visibility: every operator in the plan resolves each
  /// OID to the newest committed version <= read_ts instead of trusting the
  /// raw heap image. The caller (QueryEngine::Execute) owns the underlying
  /// Snapshot pin; the context only carries the timestamp. Parallel scans
  /// copy it onto their worker shadow contexts.
  void set_snapshot(uint64_t read_ts) {
    snapshot_ts_ = read_ts;
    snapshot_active_ = true;
  }
  /// Disarms the snapshot -- call when the owning pin is released, so a
  /// reused context cannot read through a retired (prunable) timestamp.
  void clear_snapshot() {
    snapshot_active_ = false;
    snapshot_ts_ = 0;
  }
  bool snapshot_active() const { return snapshot_active_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  // --- scan parallelism knob ----------------------------------------------

  /// Worker count the lowering uses for extent scans; 1 (default) lowers
  /// to the serial ExtentScan/HierarchyScan operators.
  void set_scan_parallelism(size_t n) { scan_parallelism_ = n == 0 ? 1 : n; }
  size_t scan_parallelism() const { return scan_parallelism_; }

  // --- batch size knob ------------------------------------------------------

  /// Rows exchanged per Operator::NextBatch call. The default (256) is
  /// small enough that a batch of decoded objects stays cache-resident and
  /// large enough to amortize virtual dispatch, span accounting, and
  /// budget polling. 1 degrades to row-at-a-time (the bench baseline).
  static constexpr size_t kDefaultBatchSize = 256;
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  // --- per-batch path-hop memo ----------------------------------------------

  /// Batch-scoped memo for path-expression hops (ref Oid -> resident
  /// image). A 256-row batch of Vehicles typically dereferences only a
  /// handful of distinct Companies, so memoizing within the batch turns
  /// ~256 shared-cache lookups into ~10. Armed only in batch mode
  /// (batch_size > 1); the Filter clears it at every batch boundary, so
  /// an entry lives for one slab and row-at-a-time reads stay untouched.
  /// Not thread-safe by design: parallel-scan workers evaluate predicates
  /// on private shadow contexts, each with its own memo (capped, since
  /// workers have no batch boundary to clear at).
  static constexpr size_t kMaxHopMemo = 1024;
  bool hop_memo_active() const { return batch_size_ > 1; }
  const std::shared_ptr<const Object>* LookupHop(Oid oid) const {
    auto it = hop_memo_.find(oid);
    return it == hop_memo_.end() ? nullptr : &it->second;
  }
  void MemoizeHop(Oid oid, std::shared_ptr<const Object> obj) {
    if (hop_memo_.size() >= kMaxHopMemo) hop_memo_.clear();
    hop_memo_.emplace(oid, std::move(obj));
  }
  void ClearHopMemo() { hop_memo_.clear(); }

  // --- EXPLAIN ANALYZE spans ----------------------------------------------

  /// Arms per-operator span accounting (rows/loops/time/pages in
  /// Operator::stats()). Off by default: the un-armed overhead in each
  /// Next call is a single relaxed load.
  void EnableAnalyze() {
    analyze_enabled_.store(true, std::memory_order_relaxed);
  }
  bool analyze_enabled() const {
    return analyze_enabled_.load(std::memory_order_relaxed);
  }

  // --- flight recorder ------------------------------------------------------

  /// Wires the process-wide flight recorder: operator Open/Close emit
  /// kExecOp begin/end events tagged with an operator identity, so a
  /// trace dump shows which plan nodes were in flight around a slow
  /// commit or a fault. Null (the default) keeps the path to a single
  /// pointer compare.
  void set_recorder(obs::FlightRecorder* r) { recorder_ = r; }
  obs::FlightRecorder* recorder() const { return recorder_; }

  // --- per-query trace buffer ---------------------------------------------

  /// Hard cap on buffered trace events: tracing a 100k-object scan must
  /// not balloon memory. Overflow increments trace_dropped() instead.
  static constexpr size_t kMaxTraceEvents = 1024;

  void EnableTrace() { trace_enabled_.store(true, std::memory_order_release); }
  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_acquire);
  }
  /// Appends one event line; no-op unless tracing is enabled. Events past
  /// kMaxTraceEvents are counted, not stored.
  void Trace(std::string line) {
    if (!trace_enabled()) return;
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (trace_.size() >= kMaxTraceEvents) {
      trace_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    trace_.push_back(std::move(line));
  }
  std::vector<std::string> TraceLines() const {
    std::lock_guard<std::mutex> lock(trace_mu_);
    return trace_;
  }
  uint64_t trace_dropped() const {
    return trace_dropped_.load(std::memory_order_relaxed);
  }

 private:
  BufferPool* bp_ = nullptr;
  BufferPoolStats baseline_{};
  obs::FlightRecorder* recorder_ = nullptr;
  size_t scan_parallelism_ = 1;
  size_t batch_size_ = kDefaultBatchSize;
  std::unordered_map<Oid, std::shared_ptr<const Object>> hop_memo_;
  // Set once before execution starts (no atomics needed: workers only read).
  bool snapshot_active_ = false;
  uint64_t snapshot_ts_ = 0;
  std::atomic<bool> has_deadline_{false};
  // steady_clock ticks since epoch; atomic because set_budget may re-arm
  // while parallel scan workers read it through CheckBudget.
  std::atomic<std::chrono::steady_clock::rep> deadline_ns_{0};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> analyze_enabled_{false};
  std::atomic<bool> trace_enabled_{false};
  std::atomic<uint64_t> trace_dropped_{0};
  mutable std::mutex trace_mu_;
  std::vector<std::string> trace_;
};

}  // namespace exec
}  // namespace kimdb

#endif  // KIMDB_EXEC_EXEC_CONTEXT_H_
