#ifndef KIMDB_UTIL_CODING_H_
#define KIMDB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace kimdb {

// Little-endian fixed-width and varint encoding into std::string buffers.
// Used by object serialization, the WAL, catalog persistence and index
// pages so that on-disk formats are platform independent.

void PutFixed8(std::string* dst, uint8_t value);
void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Length-prefixed (varint32) byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);
void PutDouble(std::string* dst, double value);

void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint32_t DecodeFixed32(const char* src);
uint64_t DecodeFixed64(const char* src);

/// Sequential decoder over a byte span. Each Read* consumes bytes and
/// returns Corruption if the input is exhausted or malformed.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadFixed8();
  Result<uint16_t> ReadFixed16();
  Result<uint32_t> ReadFixed32();
  Result<uint64_t> ReadFixed64();
  Result<uint32_t> ReadVarint32();
  Result<uint64_t> ReadVarint64();
  Result<std::string_view> ReadLengthPrefixed();
  Result<double> ReadDouble();

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

/// ZigZag transform so signed values varint-encode compactly.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace kimdb

#endif  // KIMDB_UTIL_CODING_H_
