#ifndef KIMDB_UTIL_RESULT_H_
#define KIMDB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace kimdb {

/// A value-or-error type: either holds a `T` or a non-OK Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
template <typename T>
class Result {
 public:
  /// Implicit from value (success) and from Status (failure), mirroring
  /// arrow::Result. A Status used to construct a Result must not be OK.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression. RocksDB/Arrow idiom.
#define KIMDB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::kimdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define KIMDB_CONCAT_IMPL(a, b) a##b
#define KIMDB_CONCAT(a, b) KIMDB_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs` (which may include a type declaration).
#define KIMDB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  KIMDB_ASSIGN_OR_RETURN_IMPL(KIMDB_CONCAT(_res_, __LINE__), lhs, \
                              rexpr)

#define KIMDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace kimdb

#endif  // KIMDB_UTIL_RESULT_H_
