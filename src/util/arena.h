#ifndef KIMDB_UTIL_ARENA_H_
#define KIMDB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kimdb {

/// Bump-pointer allocator for short-lived, same-lifetime allocations
/// (query plan nodes, parser AST nodes). All memory is released when the
/// arena is destroyed; individual frees are not supported.
class Arena {
 public:
  explicit Arena(size_t block_size = 4096) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    bytes = (bytes + 7) & ~size_t{7};  // 8-byte alignment
    if (bytes > remaining_) {
      size_t alloc = bytes > block_size_ ? bytes : block_size_;
      blocks_.push_back(std::make_unique<char[]>(alloc));
      ptr_ = blocks_.back().get();
      remaining_ = alloc;
      total_ += alloc;
    }
    char* out = ptr_;
    ptr_ += bytes;
    remaining_ -= bytes;
    return out;
  }

  /// Constructs a T inside the arena. T's destructor is never run; only use
  /// for trivially-destructible or arena-lifetime types.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  size_t bytes_allocated() const { return total_; }

 private:
  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t total_ = 0;
};

}  // namespace kimdb

#endif  // KIMDB_UTIL_ARENA_H_
