#ifndef KIMDB_UTIL_STOPWATCH_H_
#define KIMDB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace kimdb {

/// Monotonic wall-clock stopwatch used by benchmark harnesses and the
/// transaction manager (long-duration transaction ages).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kimdb

#endif  // KIMDB_UTIL_STOPWATCH_H_
