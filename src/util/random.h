#ifndef KIMDB_UTIL_RANDOM_H_
#define KIMDB_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace kimdb {

/// Small, fast, deterministic PRNG (xorshift64*). Deterministic seeding keeps
/// tests and benchmark workloads reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  uint64_t state_;
};

/// Zipfian item generator over [0, n): benchmark workloads use this to model
/// skewed access (hot classes / hot objects).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zeta_n_ = Zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - Zeta(2, theta) / zeta_n_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zeta_n_;
  double alpha_;
  double eta_;
};

}  // namespace kimdb

#endif  // KIMDB_UTIL_RANDOM_H_
