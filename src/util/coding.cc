#include "util/coding.h"

namespace kimdb {

void PutFixed8(std::string* dst, uint8_t value) {
  dst->push_back(static_cast<char>(value));
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  dst->append(buf, 2);
}

void EncodeFixed32(char* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(src[i])) << (8 * i);
  }
  return v;
}

uint64_t DecodeFixed64(const char* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(src[i])) << (8 * i);
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

Result<uint8_t> Decoder::ReadFixed8() {
  if (data_.size() < 1) return Status::Corruption("truncated fixed8");
  uint8_t v = static_cast<unsigned char>(data_[0]);
  data_.remove_prefix(1);
  return v;
}

Result<uint16_t> Decoder::ReadFixed16() {
  if (data_.size() < 2) return Status::Corruption("truncated fixed16");
  uint16_t v = static_cast<uint16_t>(
      static_cast<unsigned char>(data_[0]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(data_[1])) << 8));
  data_.remove_prefix(2);
  return v;
}

Result<uint32_t> Decoder::ReadFixed32() {
  if (data_.size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t v = DecodeFixed32(data_.data());
  data_.remove_prefix(4);
  return v;
}

Result<uint64_t> Decoder::ReadFixed64() {
  if (data_.size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = DecodeFixed64(data_.data());
  data_.remove_prefix(8);
  return v;
}

Result<uint32_t> Decoder::ReadVarint32() {
  KIMDB_ASSIGN_OR_RETURN(uint64_t v, ReadVarint64());
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  return static_cast<uint32_t>(v);
}

Result<uint64_t> Decoder::ReadVarint64() {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !data_.empty(); shift += 7) {
    uint8_t byte = static_cast<unsigned char>(data_[0]);
    data_.remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Status::Corruption("truncated or overlong varint64");
}

Result<std::string_view> Decoder::ReadLengthPrefixed() {
  KIMDB_ASSIGN_OR_RETURN(uint32_t len, ReadVarint32());
  if (data_.size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  std::string_view out = data_.substr(0, len);
  data_.remove_prefix(len);
  return out;
}

Result<double> Decoder::ReadDouble() {
  KIMDB_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace kimdb
