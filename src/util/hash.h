#ifndef KIMDB_UTIL_HASH_H_
#define KIMDB_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace kimdb {

/// FNV-1a 64-bit hash; used for hash joins, hash indexes and checksums of
/// WAL records (not cryptographic).
inline uint64_t Hash64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace kimdb

#endif  // KIMDB_UTIL_HASH_H_
