#ifndef KIMDB_UTIL_STATUS_H_
#define KIMDB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace kimdb {

/// Error category for a failed operation. Mirrors the RocksDB/Arrow idiom:
/// fallible operations return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kIOError,
  kNotSupported,
  kFailedPrecondition,
  kPermissionDenied,
  kAborted,          // transaction aborted (e.g. deadlock victim)
  kBusy,             // lock conflict under no-wait policies
  kResourceExhausted,
  kDeadlineExceeded,  // query budget / cancellation (ExecContext)
  kInternal,
};

/// Returns a human-readable name for `code` ("NotFound", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, value-semantic success-or-error type.
///
/// An OK status carries no allocation. Error statuses carry a code and a
/// message. Statuses are ordered-comparable only by code equality.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

}  // namespace kimdb

#endif  // KIMDB_UTIL_STATUS_H_
